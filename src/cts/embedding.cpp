#include "cts/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "geom/segment.hpp"
#include "tech/wire_model.hpp"

namespace sndr::cts {

namespace {

struct EmbNode {
  geom::Point p;
  int sink = -1;
  int buffer_cell = -1;  ///< buffer inserted at p driving the subtree.
  int left = -1;
  int right = -1;
  geom::Path left_path;   ///< p -> left child's point.
  geom::Path right_path;  ///< p -> right child's point.
  double cap_up = 0.0;    ///< F, load presented to the wire above p.
  double t = 0.0;         ///< s, balanced delay from p down to every sink.
  int stages = 0;         ///< buffer stages between p and every sink.
  double unbuf_len = 0.0; ///< um, longest in-net wire run below p.
  // Set when buffer_cell >= 0, so the cell can be re-chosen for delay
  // matching at merge time:
  double pre_buf_t = 0.0;   ///< s, balanced delay before the root buffer.
  double buf_load = 0.0;    ///< F, load the root buffer drives.
};

struct Embedder {
  const netlist::Design* design;
  const tech::Technology* tech;
  CtsOptions opt;
  double r = 0.0;  ///< ohm/um at the planning rule.
  double c = 0.0;  ///< F/um at the planning rule and occupancy.

  std::vector<EmbNode> emb;
  double elongation = 0.0;
  double residual_imbalance = 0.0;  ///< s, worst unabsorbed merge mismatch.

  /// Elmore delay of a wire of length `len` driving a subtree with load
  /// `cap` and internal balanced delay `t`.
  double wire_delay(double len, double cap, double t) const {
    return t + r * len * (cap + 0.5 * c * len);
  }

  /// Length of wire needed so that a subtree (cap, t) matches target delay
  /// `t_target` >= t. Solves r*L*(cap + c*L/2) = t_target - t.
  double elongated_length(double cap, double t, double t_target) const {
    const double need = t_target - t;
    if (need <= 0.0) return 0.0;
    const double a = 0.5 * r * c;
    const double b = r * cap;
    return (-b + std::sqrt(b * b + 4.0 * a * need)) / (2.0 * a);
  }

  double sizing_slew() const { return opt.sizing_derate * opt.target_slew; }

  void add_buffer(EmbNode& n, double load_cap) {
    const int cell = tech->buffers.best_for_load(load_cap, sizing_slew());
    const tech::BufferCell& buf = tech->buffers[cell];
    n.buffer_cell = cell;
    n.pre_buf_t = n.t;
    n.buf_load = load_cap;
    n.t += buf.delay(load_cap, opt.nominal_slew);
    n.cap_up = buf.input_cap;
    n.stages += 1;
    n.unbuf_len = 0.0;
  }

  /// If both subtree roots carry buffers, re-pick the two cells jointly to
  /// minimize the sibling delay mismatch (subject to the slew/load limits).
  /// Matching delays with sizing is far cheaper than matching them with
  /// snaked wire, which is the only other lever the merge has.
  void match_sibling_buffers(int li, int ri) {
    EmbNode& a = emb[li];
    EmbNode& b = emb[ri];
    if (a.buffer_cell < 0 && b.buffer_cell < 0) return;
    if (a.buffer_cell < 0 || b.buffer_cell < 0) {
      // One side buffered: re-size that buffer alone to chase the other
      // side's delay (slew and load limits still apply).
      EmbNode& buffered = a.buffer_cell >= 0 ? a : b;
      const double target = a.buffer_cell >= 0 ? b.t : a.t;
      const tech::BufferLibrary& lib = tech->buffers;
      int best = buffered.buffer_cell;
      double best_gap = std::abs(buffered.t - target);
      for (int cc = 0; cc < lib.size(); ++cc) {
        if (buffered.buf_load > lib[cc].max_cap ||
            lib[cc].output_slew(buffered.buf_load) > sizing_slew()) {
          continue;
        }
        const double t = buffered.pre_buf_t +
                         lib[cc].delay(buffered.buf_load, opt.nominal_slew);
        if (std::abs(t - target) + 1e-18 < best_gap) {
          best_gap = std::abs(t - target);
          best = cc;
        }
      }
      if (best != buffered.buffer_cell) {
        buffered.buffer_cell = best;
        buffered.t = buffered.pre_buf_t +
                     lib[best].delay(buffered.buf_load, opt.nominal_slew);
        buffered.cap_up = lib[best].input_cap;
      }
      return;
    }
    const tech::BufferLibrary& lib = tech->buffers;
    int best_a = a.buffer_cell;
    int best_b = b.buffer_cell;
    double best_gap = std::abs(a.t - b.t);
    for (int ca = 0; ca < lib.size(); ++ca) {
      if (a.buf_load > lib[ca].max_cap ||
          lib[ca].output_slew(a.buf_load) > sizing_slew()) {
        continue;
      }
      const double ta = a.pre_buf_t + lib[ca].delay(a.buf_load,
                                                    opt.nominal_slew);
      for (int cb = 0; cb < lib.size(); ++cb) {
        if (b.buf_load > lib[cb].max_cap ||
            lib[cb].output_slew(b.buf_load) > sizing_slew()) {
          continue;
        }
        const double tb = b.pre_buf_t + lib[cb].delay(b.buf_load,
                                                      opt.nominal_slew);
        const double gap = std::abs(ta - tb);
        if (gap + 1e-18 < best_gap) {
          best_gap = gap;
          best_a = ca;
          best_b = cb;
        }
      }
    }
    if (best_a != a.buffer_cell) {
      a.buffer_cell = best_a;
      a.t = a.pre_buf_t + lib[best_a].delay(a.buf_load, opt.nominal_slew);
      a.cap_up = lib[best_a].input_cap;
    }
    if (best_b != b.buffer_cell) {
      b.buffer_cell = best_b;
      b.t = b.pre_buf_t + lib[best_b].delay(b.buf_load, opt.nominal_slew);
      b.cap_up = lib[best_b].input_cap;
    }
  }

  /// Adds one buffer stage at the root point of subtree emb[idx]; sinks and
  /// already-buffered roots get a zero-length wrapper node so a node never
  /// carries two roles. Returns the (possibly new) subtree root index.
  int push_buffer(int idx) {
    if (emb[idx].buffer_cell < 0 && emb[idx].sink < 0) {
      add_buffer(emb[idx], emb[idx].cap_up);
      return idx;
    }
    EmbNode wrap;
    wrap.p = emb[idx].p;
    wrap.left = idx;
    wrap.left_path = {wrap.p, wrap.p};
    wrap.cap_up = emb[idx].cap_up;
    wrap.t = emb[idx].t;
    wrap.stages = emb[idx].stages;
    add_buffer(wrap, wrap.cap_up);
    emb.push_back(std::move(wrap));
    return static_cast<int>(emb.size()) - 1;
  }

  /// Ensures the subtree rooted at emb[idx] carries at least `stages`
  /// buffer stages by stacking buffers at its root point. Keeping sibling
  /// stage counts equal is what keeps skew balanced without resorting to
  /// kilometer-scale snaking.
  int align_stages(int idx, int stages) {
    while (emb[idx].stages < stages) idx = push_buffer(idx);
    return idx;
  }

  /// Extends the subtree emb[idx] with a wire of length `hop` from its root
  /// point toward `target` (rectilinear), terminated by a repeater sized for
  /// the load. Returns the new subtree root (at the hop's far end).
  int advance_toward(int idx, geom::Point target, double hop, int depth) {
    // The hop wire joins the net below the new repeater; make sure the
    // combined run stays within the length budget.
    if (emb[idx].unbuf_len + hop > opt.max_unbuffered_len) {
      idx = push_buffer(idx);
    }
    const geom::Point from = emb[idx].p;
    const geom::Path full = geom::l_path(from, target, depth % 2 == 0);
    auto [head, tail] = geom::split_at(full, hop);
    EmbNode n;
    n.p = head.back();
    n.left = idx;
    n.left_path = geom::reversed(head);
    const double load = emb[idx].cap_up + c * hop;
    n.t = wire_delay(hop, emb[idx].cap_up, emb[idx].t);
    n.stages = emb[idx].stages;
    add_buffer(n, load);
    emb.push_back(std::move(n));
    return static_cast<int>(emb.size()) - 1;
  }

  int build(const Topology& topo, int topo_id, int depth) {
    const TopoNode& tn = topo[topo_id];
    if (tn.is_leaf()) {
      EmbNode n;
      n.p = design->sinks[tn.sink].loc;
      n.sink = tn.sink;
      n.cap_up = design->sinks[tn.sink].pin_cap;
      n.t = 0.0;
      emb.push_back(std::move(n));
      return static_cast<int>(emb.size()) - 1;
    }

    int li = build(topo, tn.left, depth + 1);
    int ri = build(topo, tn.right, depth + 1);

    // Long merge spans: repeat the faster side toward the other with
    // buffered hops of at most max_unbuffered_len, so no net ends up with a
    // trunk run whose wire resistance destroys slew. Advancing the side
    // with the smaller accumulated delay doubles as delay equalization.
    while (geom::manhattan(emb[li].p, emb[ri].p) >
           opt.max_unbuffered_len) {
      const double d = geom::manhattan(emb[li].p, emb[ri].p);
      const double hop = std::min(opt.max_unbuffered_len,
                                  d - 0.5 * opt.max_unbuffered_len);
      if (emb[li].t <= emb[ri].t) {
        li = advance_toward(li, emb[ri].p, hop, depth);
      } else {
        ri = advance_toward(ri, emb[li].p, hop, depth);
      }
    }

    // If merging the raw children would clearly bust the cap budget, buffer
    // both children first (two just-under-budget subtrees would otherwise
    // merge into a ~2x-budget net whose driver cannot hold slew). The
    // at-merge backstop below handles mild overshoot.
    const double d_est = geom::manhattan(emb[li].p, emb[ri].p);
    if (emb[li].cap_up + emb[ri].cap_up + c * d_est >
        1.4 * opt.max_unbuffered_cap) {
      li = push_buffer(li);
      ri = push_buffer(ri);
    }
    // Likewise for accumulated unbuffered wire runs: if a child's in-net
    // run plus this merge's span would exceed the length budget, isolate
    // the child behind a buffer now.
    if (emb[li].unbuf_len + d_est > opt.max_unbuffered_len) {
      li = push_buffer(li);
    }
    if (emb[ri].unbuf_len + d_est > opt.max_unbuffered_len) {
      ri = push_buffer(ri);
    }
    // Equalize buffer stage counts before balancing the wire, so the wire
    // only has to absorb wire/cap asymmetry (ps), not buffer delays (tens
    // of ps).
    const int stages = std::max(emb[li].stages, emb[ri].stages);
    li = align_stages(li, stages);
    ri = align_stages(ri, stages);
    match_sibling_buffers(li, ri);
    // Copy child POD state (emb may reallocate when we push the merge node).
    const geom::Point pa = emb[li].p;
    const geom::Point pb = emb[ri].p;
    const double ca = emb[li].cap_up;
    const double cb = emb[ri].cap_up;
    const double ta = emb[li].t;
    const double tb = emb[ri].t;

    const bool horizontal_first = depth % 2 == 0;
    const geom::Path base = geom::l_path(pa, pb, horizontal_first);
    const double d = geom::path_length(base);

    EmbNode n;
    n.left = li;
    n.right = ri;
    n.stages = stages;

    const double g0 = ta - wire_delay(d, cb, tb);   // merge at pa.
    const double gd = wire_delay(d, ca, ta) - tb;   // merge at pb.
    double len_a = 0.0;
    double len_b = 0.0;
    if (g0 >= 0.0) {
      // Left side slower even with the whole span on the right: snake right,
      // but never past the unbuffered-length budget - a small residual
      // imbalance beats an unbuffered run that cannot hold slew.
      n.p = pa;
      len_a = 0.0;
      const double allowed =
          std::max(d, opt.max_unbuffered_len - emb[ri].unbuf_len);
      len_b = std::min(std::max(d, elongated_length(cb, tb, ta)), allowed);
      n.left_path = {pa, pa};
      n.right_path = geom::detour_path(n.p, pb, len_b, horizontal_first);
      elongation += len_b - d;
      n.t = ta;
      residual_imbalance =
          std::max(residual_imbalance, ta - wire_delay(len_b, cb, tb));
    } else if (gd <= 0.0) {
      n.p = pb;
      len_b = 0.0;
      const double allowed =
          std::max(d, opt.max_unbuffered_len - emb[li].unbuf_len);
      len_a = std::min(std::max(d, elongated_length(ca, ta, tb)), allowed);
      n.right_path = {pb, pb};
      n.left_path = geom::detour_path(n.p, pa, len_a, !horizontal_first);
      elongation += len_a - d;
      n.t = tb;
      residual_imbalance =
          std::max(residual_imbalance, tb - wire_delay(len_a, ca, ta));
    } else {
      // Balanced tapping point exists on the span: bisect the monotone
      // difference g(x) = delay_left(x) - delay_right(d - x).
      double lo = 0.0;
      double hi = d;
      for (int it = 0; it < 100 && hi - lo > 1e-9 * std::max(1.0, d); ++it) {
        const double mid = 0.5 * (lo + hi);
        const double g =
            wire_delay(mid, ca, ta) - wire_delay(d - mid, cb, tb);
        (g >= 0.0 ? hi : lo) = mid;
      }
      const double x = 0.5 * (lo + hi);
      len_a = x;
      len_b = d - x;
      auto [head, tail] = geom::split_at(base, x);
      n.p = head.back();
      n.left_path = geom::reversed(head);
      n.right_path = tail;
      n.t = wire_delay(len_a, ca, ta);
    }

    n.unbuf_len = std::max(len_a + emb[li].unbuf_len,
                           len_b + emb[ri].unbuf_len);
    if (getenv("SNDR_CTS_DBG") && n.unbuf_len > opt.max_unbuffered_len) {
      fprintf(stderr, "unbuf overrun: len_a=%.0f ua=%.0f len_b=%.0f ub=%.0f d=%.0f\n",
              len_a, emb[li].unbuf_len, len_b, emb[ri].unbuf_len, d);
    }
    const double merged_cap = ca + cb + c * (len_a + len_b);
    if (merged_cap > opt.max_unbuffered_cap ||
        n.unbuf_len > opt.max_unbuffered_len) {
      add_buffer(n, merged_cap);
    } else {
      n.cap_up = merged_cap;
    }
    emb.push_back(std::move(n));
    return static_cast<int>(emb.size()) - 1;
  }

  void emit(netlist::ClockTree& tree, int emb_id, int parent_tree_id,
            geom::Path edge_path, CtsResult& result) const {
    const EmbNode& n = emb[emb_id];
    int tid = -1;
    if (n.sink >= 0) {
      tid = tree.add_sink(n.p, parent_tree_id, n.sink);
    } else if (n.buffer_cell >= 0) {
      tid = tree.add_buffer(n.p, parent_tree_id, n.buffer_cell);
      ++result.buffers;
    } else {
      tid = tree.add_steiner(n.p, parent_tree_id);
    }
    if (edge_path.size() < 2) {
      edge_path = {tree.loc(parent_tree_id), n.p};
    }
    tree.set_path(tid, std::move(edge_path));
    if (n.left >= 0 && n.right >= 0) ++result.merges;
    if (n.left >= 0) emit(tree, n.left, tid, n.left_path, result);
    if (n.right >= 0) emit(tree, n.right, tid, n.right_path, result);
  }
};

}  // namespace

CtsResult synthesize(const netlist::Design& design,
                     const tech::Technology& tech, const CtsOptions& options) {
  if (design.sinks.empty()) {
    throw std::invalid_argument("cts::synthesize: design has no sinks");
  }

  Embedder e;
  e.design = &design;
  e.tech = &tech;
  e.opt = options;
  const int rule_idx = options.planning_rule >= 0
                           ? options.planning_rule
                           : tech.rules.blanket_index();
  const tech::WireRc rc = tech::wire_rc_per_um(
      tech.clock_layer, tech.rules[rule_idx], options.planning_occupancy);
  e.r = rc.res_per_um;
  e.c = rc.cap_gnd_per_um + rc.cap_cpl_per_um;

  const Topology topo =
      options.topology == TopologyMode::kHybridHtree
          ? build_topology_hybrid(design.sinks, design.core,
                                  options.htree_levels)
          : build_topology_mmm(design.sinks);
  const int top = e.build(topo, topo.root, 0);

  // A lightly loaded top merge still needs a driver between the source and
  // the tree; give it one unless the caller opted out.
  int top_final = top;
  if (options.buffer_root && e.emb[top].buffer_cell < 0 &&
      e.emb[top].sink < 0) {
    top_final = e.align_stages(top, e.emb[top].stages + 1);
  }
  // A long run from the clock entry point to the tree top gets repeaters
  // like any other trunk route.
  while (geom::manhattan(design.clock_root, e.emb[top_final].p) >
         options.max_unbuffered_len) {
    const double d = geom::manhattan(design.clock_root, e.emb[top_final].p);
    const double hop = std::min(options.max_unbuffered_len,
                                d - 0.5 * options.max_unbuffered_len);
    top_final = e.advance_toward(top_final, design.clock_root, hop, 0);
  }

  CtsResult result;
  const int src = result.tree.add_source(design.clock_root);
  const geom::Path root_path =
      geom::l_path(design.clock_root, e.emb[top_final].p, true);
  e.emit(result.tree, top_final, src, root_path, result);
  result.tree.validate(static_cast<int>(design.sinks.size()));

  result.wirelength = result.tree.total_wirelength();
  result.elongation = e.elongation;
  result.residual_imbalance = e.residual_imbalance;
  result.planned_latency =
      e.wire_delay(geom::path_length(root_path), e.emb[top_final].cap_up,
                   e.emb[top_final].t);
  return result;
}

}  // namespace sndr::cts
