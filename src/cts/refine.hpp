// Post-synthesis skew refinement against the signoff timer.
//
// The embedder balances delays with a planning model (Elmore, uniform
// occupancy); after routing and extraction the signoff timer (D2M, real
// congestion map) disagrees by a few ps per stage, which accumulates into
// tens of ps of skew on deep trees. This pass closes the gap the way
// production flows do: re-size buffers so that fast subtrees slow down and
// slow subtrees speed up, iterating against full extraction + timing.
//
// Corrections are computed hierarchically (top-down, subtracting what
// ancestors already corrected), so one iteration removes the systematic
// component and 2-4 iterations typically reach the sizing quantization
// floor.
#pragma once

#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"
#include "tech/units.hpp"
#include "timing/tree_timing.hpp"

namespace sndr::cts {

struct RefineOptions {
  int max_iterations = 4;
  /// Stop once skew is below this fraction of the design's budget.
  double target_fraction = 0.6;
  /// Slew ceiling honored when downsizing (matches CtsOptions sizing).
  double max_output_slew = 0.80 * 80 * units::ps;
  /// Rule assumed for extraction during refinement; -1 = blanket.
  int planning_rule = -1;
  timing::AnalysisOptions analysis;
};

struct RefineResult {
  double initial_skew = 0.0;  ///< s, before refinement.
  double final_skew = 0.0;    ///< s, after.
  int resizes = 0;
  int iterations = 0;
};

/// Refines buffer sizes in place. The tree remains valid; only buffer cells
/// change (no topology or routing edits).
RefineResult refine_skew(netlist::ClockTree& tree,
                         const netlist::Design& design,
                         const tech::Technology& tech,
                         const RefineOptions& options = {});

}  // namespace sndr::cts
