// Abstract clock-tree topology generation (the "connectivity" half of CTS).
//
// Uses the classic Method of Means and Medians (MMM): recursively bipartition
// the sink set through the median along the axis of larger spread. The
// result is a balanced binary topology whose leaves are design sinks; the
// embedding stage (embedding.hpp) then assigns physical merge points.
#pragma once

#include <vector>

#include "netlist/design.hpp"

namespace sndr::cts {

struct TopoNode {
  int left = -1;
  int right = -1;
  int sink = -1;  ///< design sink index; >= 0 iff leaf.

  bool is_leaf() const { return sink >= 0; }
};

struct Topology {
  std::vector<TopoNode> nodes;
  int root = -1;

  int size() const { return static_cast<int>(nodes.size()); }
  const TopoNode& operator[](int i) const { return nodes.at(i); }

  /// Number of leaves under the root (sanity: equals the sink count).
  int leaf_count() const;
};

/// Builds the MMM topology over all design sinks. Throws on an empty sink
/// set. Deterministic: ties are broken by sink index.
Topology build_topology_mmm(const std::vector<netlist::Sink>& sinks);

/// Hybrid H-tree topology: the top `htree_levels` levels split the *region*
/// at its geometric center with alternating cut axis (the classic H-tree
/// recursion, which yields highly regular trunks), then MMM median splits
/// take over for the irregular leaf clusters. Degenerate cuts (all sinks on
/// one side) fall back to a median split so progress is guaranteed.
Topology build_topology_hybrid(const std::vector<netlist::Sink>& sinks,
                               const geom::BBox& core, int htree_levels);

}  // namespace sndr::cts
