#include "cts/topology.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sndr::cts {

int Topology::leaf_count() const {
  int n = 0;
  for (const TopoNode& node : nodes) {
    if (node.is_leaf()) ++n;
  }
  return n;
}

namespace {

struct Builder {
  const std::vector<netlist::Sink>* sinks;
  Topology topo;

  int median_split(std::vector<int>& ids, int lo, int hi, bool split_x) {
    const int mid = lo + (hi - lo) / 2;
    std::nth_element(ids.begin() + lo, ids.begin() + mid, ids.begin() + hi,
                     [&](int a, int b) {
                       const geom::Point pa = (*sinks)[a].loc;
                       const geom::Point pb = (*sinks)[b].loc;
                       if (split_x) {
                         if (pa.x != pb.x) return pa.x < pb.x;
                       } else {
                         if (pa.y != pb.y) return pa.y < pb.y;
                       }
                       return a < b;  // deterministic tie-break.
                     });
    return mid;
  }

  int build(std::vector<int>& ids, int lo, int hi) {  // [lo, hi)
    if (hi - lo == 1) {
      topo.nodes.push_back(TopoNode{-1, -1, ids[lo]});
      return topo.size() - 1;
    }
    // Axis of larger spread; median split keeps the tree balanced.
    geom::BBox box;
    for (int i = lo; i < hi; ++i) box.extend((*sinks)[ids[i]].loc);
    const bool split_x = box.width() >= box.height();
    const int mid = median_split(ids, lo, hi, split_x);
    const int l = build(ids, lo, mid);
    const int r = build(ids, mid, hi);
    topo.nodes.push_back(TopoNode{l, r, -1});
    return topo.size() - 1;
  }

  int build_hybrid(std::vector<int>& ids, int lo, int hi,
                   const geom::BBox& region, int h_levels, int depth) {
    if (hi - lo == 1) {
      topo.nodes.push_back(TopoNode{-1, -1, ids[lo]});
      return topo.size() - 1;
    }
    if (depth >= h_levels) {
      return build(ids, lo, hi);
    }
    // Geometric center cut with alternating axis.
    const bool split_x = depth % 2 == 0;
    const double cut = split_x ? region.center().x : region.center().y;
    const auto left_of = [&](int id) {
      const geom::Point p = (*sinks)[id].loc;
      return (split_x ? p.x : p.y) <= cut;
    };
    const auto mid_it =
        std::partition(ids.begin() + lo, ids.begin() + hi, left_of);
    int mid = static_cast<int>(mid_it - ids.begin());
    if (mid == lo || mid == hi) {
      // Degenerate cut (all sinks on one side): median keeps progress.
      mid = median_split(ids, lo, hi, split_x);
    }
    geom::BBox left = region;
    geom::BBox right = region;
    if (split_x) {
      left = geom::BBox(region.lo().x, region.lo().y, cut, region.hi().y);
      right = geom::BBox(cut, region.lo().y, region.hi().x, region.hi().y);
    } else {
      left = geom::BBox(region.lo().x, region.lo().y, region.hi().x, cut);
      right = geom::BBox(region.lo().x, cut, region.hi().x, region.hi().y);
    }
    const int l = build_hybrid(ids, lo, mid, left, h_levels, depth + 1);
    const int r = build_hybrid(ids, mid, hi, right, h_levels, depth + 1);
    topo.nodes.push_back(TopoNode{l, r, -1});
    return topo.size() - 1;
  }
};

}  // namespace

Topology build_topology_mmm(const std::vector<netlist::Sink>& sinks) {
  if (sinks.empty()) {
    throw std::invalid_argument("build_topology_mmm: no sinks");
  }
  Builder b;
  b.sinks = &sinks;
  b.topo.nodes.reserve(2 * sinks.size());
  std::vector<int> ids(sinks.size());
  std::iota(ids.begin(), ids.end(), 0);
  b.topo.root = b.build(ids, 0, static_cast<int>(ids.size()));
  return std::move(b.topo);
}

Topology build_topology_hybrid(const std::vector<netlist::Sink>& sinks,
                               const geom::BBox& core, int htree_levels) {
  if (sinks.empty()) {
    throw std::invalid_argument("build_topology_hybrid: no sinks");
  }
  Builder b;
  b.sinks = &sinks;
  b.topo.nodes.reserve(2 * sinks.size());
  std::vector<int> ids(sinks.size());
  std::iota(ids.begin(), ids.end(), 0);
  geom::BBox region = core;
  if (region.empty()) {
    for (const netlist::Sink& s : sinks) region.extend(s.loc);
  }
  b.topo.root = b.build_hybrid(ids, 0, static_cast<int>(ids.size()), region,
                               std::max(0, htree_levels), 0);
  return std::move(b.topo);
}

}  // namespace sndr::cts
