// Server: a persistent, multi-tenant job queue over the Session/Flow core.
//
// Jobs are FlowConfigs. submit() applies admission control and enqueues;
// a fixed pool of worker threads pops jobs FIFO and runs each through
// serve::execute_job with the shared cache (technology parsed once per
// distinct file, predictors trained once per distinct input triple) and a
// per-job CancelToken. Everything a job observes lands in its private
// ObsScope; on completion the server folds that snapshot into its own
// server-level registry, so one manifest answers "what has this server
// done" (admit/reject/cancel counters, queue depth, per-job wall-time
// histogram, plus the summed core metrics of every job).
//
// Admission control (DESIGN.md §12):
//   * Memory. With a server memory budget set, every job must declare its
//     own memory_budget (> 0, <= the server's) or be rejected outright
//     (kInvalidArgument) — an undeclared job is unbounded and
//     unschedulable. Dispatch blocks rather than oversubscribes: the head
//     job waits until the sum of running declarations plus its own fits
//     the server budget (head-of-line order keeps dispatch FIFO and
//     starvation-free).
//   * Threads. The evaluation pool is process-global, so the server owns
//     it: the lane count is applied once at construction (from
//     ServerOptions::thread_budget) and every admitted job's `threads` is
//     rewritten to -1 (inherit). Results are bit-identical at any lane
//     count, so this changes scheduling, never output.
//
// Shutdown: drain() stops admission and lets queued jobs finish;
// shutdown(kCancel) additionally fires every remaining token — running
// jobs unwind with kCancelled at their next cancellation point, queued
// jobs never start. Either way the workers are joined before return.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "obs/scope.hpp"
#include "serve/shared_cache.hpp"
#include "serve/submit.hpp"

namespace sndr::serve {

struct ServerOptions {
  /// Worker threads (>= 1). Each runs one job at a time; jobs themselves
  /// may parallelize through the process-global pool.
  int workers = 1;
  /// Server-wide memory budget for admission control; 0 = unlimited (jobs
  /// need not declare).
  std::size_t memory_budget_bytes = 0;
  /// Process-global lane count, applied once at construction.
  /// Default (-1) inherits whatever the process already resolved.
  common::ThreadBudget thread_budget{-1};
};

enum class JobState { kQueued, kRunning, kDone };

struct JobRecord {
  int id = 0;
  std::string design_path;
  JobState state = JobState::kQueued;
  double queue_seconds = 0.0;  ///< submit -> dispatch.
  JobOutcome outcome;          ///< meaningful when state == kDone.
};

class Server {
 public:
  enum class Shutdown { kDrain, kCancel };

  /// `cache` may be shared across servers; null = the server owns one.
  explicit Server(ServerOptions options, SharedCache* cache = nullptr);
  ~Server();  ///< shutdown(kCancel) if still running.
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission control + enqueue. Returns the job id, or kInvalidArgument
  /// when the job is rejected (no/oversized memory declaration under a
  /// server budget, or the server is no longer accepting).
  common::Result<int> submit(flow::FlowConfig config);

  /// Fires the job's cancel token (queued: never starts; running: unwinds
  /// with kCancelled at the next cancellation point). False for an
  /// unknown id; true even if the job already finished (no-op then).
  bool cancel(int id);

  /// Blocks until the job completes; returns its record. kInvalidArgument
  /// result for an unknown id.
  common::Result<JobRecord> wait(int id);

  /// Stops admission, waits for the queue to empty (kDrain) or cancels
  /// everything in flight first (kCancel), joins the workers. Idempotent.
  void shutdown(Shutdown mode);

  /// shutdown(kDrain) + every record, ascending id.
  std::vector<JobRecord> drain();

  int queue_depth() const;
  SharedCache& cache() { return *cache_; }
  obs::ObsScope& obs_scope() { return scope_; }

  /// The server-level registry view: serve.* counters, the queue-depth
  /// gauge (refreshed here), the per-job wall-time histogram, and the
  /// accumulated per-job core metrics.
  obs::MetricsRegistry::Snapshot metrics_snapshot();

 private:
  struct Entry {
    JobRecord record;
    flow::FlowConfig config;
    common::CancelToken token;
    bool done = false;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop();
  /// Head job is dispatchable: cancelled (dispatch = mark done) or fits
  /// the memory budget. Caller holds mutex_.
  bool head_ready() const;

  ServerOptions options_;
  std::unique_ptr<SharedCache> owned_cache_;
  SharedCache* cache_;
  obs::ObsScope scope_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: queue / memory / stop.
  std::condition_variable done_cv_;  ///< waiters: job done / queue empty.
  std::deque<int> queue_;
  std::map<int, std::unique_ptr<Entry>> jobs_;
  std::size_t memory_in_use_ = 0;
  int running_ = 0;
  int next_id_ = 1;
  bool accepting_ = true;
  bool stop_ = false;
  bool joined_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sndr::serve
