// The one submit path: a FlowConfig in, a JobOutcome out.
//
// execute_job is the single function through which every run enters the
// core — the standalone CLI (`sndr run`) calls it with no cache, the
// server's workers call it with the shared cache and a live cancel token.
// Both therefore execute the identical Session/Flow sequence, which is
// what makes "service results are bitwise identical to the CLI" true by
// construction rather than by test alone (bench/bench_serve.cpp asserts
// it anyway).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "dse/explorer.hpp"
#include "flow/config.hpp"
#include "flow/flow.hpp"
#include "obs/metrics.hpp"
#include "serve/shared_cache.hpp"

namespace sndr::serve {

struct JobOutcome {
  /// ok() iff the flow ran to completion (feasibility is separate —
  /// result->feasible, exit code 1 in the CLI map).
  common::Status status;
  std::optional<flow::FlowResult> result;
  /// Sweep result when the job was a DSE job (config.dse) — `result` is
  /// then empty; the per-point numbers live in the sweep.
  std::optional<dse::SweepResult> dse;

  // Loaded-design summary, captured on success (the line the CLI prints
  // above the evaluation table).
  std::string design_name;
  std::size_t sinks = 0;
  int buffers = 0;
  int nets = 0;
  double wirelength = 0.0;  ///< meters of clock wire.

  /// This job's private ObsScope registry, snapshot at the end — the
  /// server accumulates these into its server-level registry.
  obs::MetricsRegistry::Snapshot metrics;
  double wall_seconds = 0.0;

  bool ok() const { return status.ok(); }
  bool feasible() const {
    return status.ok() && ((result && result->feasible) ||
                           (dse && !dse->front.empty()));
  }
};

/// Runs one job to completion (or cancellation) in the calling thread.
///
/// `cache` may be null (standalone CLI): the session then loads its own
/// technology and trains its own predictor. With a cache, the session is
/// seeded with a shared World and a predictor trained during the run is
/// harvested back into the cache. `token` cancels cooperatively; a
/// default-constructed token never fires.
///
/// Never throws; every failure (including cancellation) comes back as
/// outcome.status.
JobOutcome execute_job(flow::FlowConfig config, SharedCache* cache,
                       common::CancelToken token = {});

}  // namespace sndr::serve
