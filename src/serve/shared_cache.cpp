#include "serve/shared_cache.hpp"

#include <cstdio>
#include <fstream>

#include "tech/technology.hpp"

namespace sndr::serve {

namespace {

/// Built-in default technology key — no file to fingerprint, the content
/// is the binary itself.
constexpr const char* kDefaultTechKey = "tech:default";

std::string to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

common::Result<std::string> file_fingerprint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return common::Status::NotFound("cannot open " + path);
  }
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  char buf[1 << 16];
  while (f.read(buf, sizeof buf) || f.gcount() > 0) {
    const std::streamsize n = f.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ULL;  // FNV-1a prime.
    }
    if (!f) break;
  }
  if (f.bad()) {
    return common::Status::IoError("read failure on " + path);
  }
  return to_hex(h);
}

SharedCache::Lease SharedCache::acquire(const flow::FlowConfig& config) {
  Lease lease;

  // Technology handle, content-keyed. Parse outside the lock; two jobs
  // racing the same miss both parse and the second insert loses — wasted
  // work, never a wrong value.
  std::string tech_key = kDefaultTechKey;
  std::string tech_fp = "default";
  if (!config.tech_path.empty()) {
    common::Result<std::string> fp = file_fingerprint(config.tech_path);
    if (!fp.ok()) return lease;  // job's Session reports the real error.
    tech_fp = fp.value();
    tech_key = "tech:" + tech_fp;
  }
  std::shared_ptr<const tech::Technology> tech;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tech_.find(tech_key);
    if (it != tech_.end()) {
      tech = it->second;
      ++stats_.tech_hits;
    } else {
      ++stats_.tech_misses;
    }
  }
  if (!tech) {
    if (config.tech_path.empty()) {
      tech = std::make_shared<const tech::Technology>(
          tech::Technology::make_default_45nm());
    } else {
      common::Result<tech::Technology> parsed =
          tech::load_technology_file(config.tech_path);
      if (!parsed.ok()) return lease;  // Session reproduces the diagnosis.
      tech = std::make_shared<const tech::Technology>(
          std::move(parsed.value()));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = tech_.emplace(tech_key, tech);
    if (!inserted) tech = it->second;  // lost the race: share the winner's.
  }
  lease.world.tech = std::move(tech);
  lease.valid = true;

  // Predictor handle. Applicable only to the flow shape whose training the
  // key captures completely: smart optimization under models scoring
  // (training reads tree/design/tech/nets/analysis — all derived
  // deterministically from the design file, the tech, and
  // training_samples; geometry budgets change memory, never values).
  if (config.smart && config.scoring == "models") {
    common::Result<std::string> design_fp =
        file_fingerprint(config.design_path);
    if (design_fp.ok()) {
      lease.predictor_key = "predictor:" + design_fp.value() + ":" +
                            tech_fp + ":" +
                            std::to_string(config.training_samples);
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = predictors_.find(lease.predictor_key);
      if (it != predictors_.end()) {
        lease.world.predictor = it->second;
        ++stats_.predictor_hits;
      } else {
        ++stats_.predictor_misses;
      }
    }
  }
  return lease;
}

void SharedCache::store_predictor(
    const std::string& key,
    std::shared_ptr<const ndr::RuleImpactPredictor> predictor) {
  if (key.empty() || predictor == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  predictors_[key] = std::move(predictor);
  ++stats_.predictor_stores;
}

SharedCache::Stats SharedCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sndr::serve
