#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace sndr::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Server::Server(ServerOptions options, SharedCache* cache)
    : options_(options),
      owned_cache_(cache == nullptr ? std::make_unique<SharedCache>()
                                    : nullptr),
      cache_(cache == nullptr ? owned_cache_.get() : cache) {
  // The process pool is set exactly once, here; admitted jobs inherit it
  // (threads rewritten to -1 in submit), so no job ever rebuilds the pool
  // under another job's parallel region.
  options_.thread_budget.apply();
  const int workers = std::max(1, options_.workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(Shutdown::kCancel); }

common::Result<int> Server::submit(flow::FlowConfig config) {
  obs::ScopeBinding binding(scope_);
  std::lock_guard<std::mutex> lock(mutex_);
  SNDR_COUNTER_ADD("serve.jobs_submitted", 1);
  if (!accepting_) {
    SNDR_COUNTER_ADD("serve.jobs_rejected", 1);
    return common::Status::InvalidArgument("server is not accepting jobs");
  }
  if (options_.memory_budget_bytes > 0) {
    if (config.memory_budget_bytes == 0) {
      SNDR_COUNTER_ADD("serve.jobs_rejected", 1);
      return common::Status::InvalidArgument(
          "job must declare memory_budget under a server memory budget");
    }
    if (config.memory_budget_bytes > options_.memory_budget_bytes) {
      SNDR_COUNTER_ADD("serve.jobs_rejected", 1);
      return common::Status::InvalidArgument(
          "job memory_budget exceeds the server budget (" +
          std::to_string(config.memory_budget_bytes) + " > " +
          std::to_string(options_.memory_budget_bytes) + " bytes)");
    }
  }
  // The server owns the process lane count; jobs inherit it.
  config.threads = -1;

  const int id = next_id_++;
  auto entry = std::make_unique<Entry>();
  entry->record.id = id;
  entry->record.design_path = config.design_path;
  entry->config = std::move(config);
  entry->submitted = std::chrono::steady_clock::now();
  jobs_.emplace(id, std::move(entry));
  queue_.push_back(id);
  SNDR_COUNTER_ADD("serve.jobs_admitted", 1);
  SNDR_GAUGE_SET("serve.queue_depth", static_cast<double>(queue_.size()));
  work_cv_.notify_one();
  return id;
}

bool Server::cancel(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second->token.cancel();
  // A queued job blocked behind the memory gate becomes dispatchable (as
  // an immediate cancelled completion) — wake the workers.
  work_cv_.notify_all();
  return true;
}

common::Result<JobRecord> Server::wait(int id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return common::Status::InvalidArgument("unknown job id " +
                                           std::to_string(id));
  }
  Entry* entry = it->second.get();
  done_cv_.wait(lock, [entry] { return entry->done; });
  return entry->record;
}

bool Server::head_ready() const {
  if (queue_.empty()) return false;
  const Entry& head = *jobs_.at(queue_.front());
  if (head.token.cancelled()) return true;  // dispatch = mark cancelled.
  if (options_.memory_budget_bytes == 0) return true;
  return memory_in_use_ + head.config.memory_budget_bytes <=
         options_.memory_budget_bytes;
}

void Server::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // stop_ is only ever set once the queue is empty (shutdown waits for
    // the drain first), so "stop and empty" is the complete exit clause.
    work_cv_.wait(lock,
                  [this] { return (stop_ && queue_.empty()) || head_ready(); });
    if (stop_ && queue_.empty()) return;
    const int id = queue_.front();
    queue_.pop_front();
    Entry& entry = *jobs_.at(id);
    {
      obs::ScopeBinding binding(scope_);
      SNDR_GAUGE_SET("serve.queue_depth",
                     static_cast<double>(queue_.size()));
    }
    entry.record.queue_seconds = seconds_between(
        entry.submitted, std::chrono::steady_clock::now());

    if (entry.token.cancelled()) {
      // Never started: no session, no files, just a typed record.
      entry.record.state = JobState::kDone;
      entry.record.outcome.status =
          common::Status::Cancelled("cancelled before start");
      entry.done = true;
      obs::ScopeBinding binding(scope_);
      SNDR_COUNTER_ADD("serve.jobs_cancelled", 1);
      done_cv_.notify_all();
      work_cv_.notify_all();
      continue;
    }

    entry.record.state = JobState::kRunning;
    const std::size_t reserved = options_.memory_budget_bytes > 0
                                     ? entry.config.memory_budget_bytes
                                     : 0;
    memory_in_use_ += reserved;
    ++running_;
    flow::FlowConfig config = entry.config;  // run outside the lock.
    const common::CancelToken token = entry.token;
    lock.unlock();

    JobOutcome outcome = execute_job(std::move(config), cache_, token);

    lock.lock();
    memory_in_use_ -= reserved;
    --running_;
    {
      // Fold the job's observations plus the server's own accounting into
      // the server-level registry.
      obs::ScopeBinding binding(scope_);
      scope_.metrics().accumulate(outcome.metrics);
      SNDR_HISTOGRAM_OBSERVE("serve.job_wall_seconds", outcome.wall_seconds);
      // Per-job cache effectiveness, as histograms on purpose: a gauge
      // here is last-writer-wins across workers, so all but one job's rate
      // vanished from the snapshot. The distribution keeps every job.
      const std::int64_t exact_hits =
          outcome.metrics.counter("ndr.exact_cache.hits");
      const std::int64_t exact_misses =
          outcome.metrics.counter("ndr.exact_cache.misses");
      if (exact_hits + exact_misses > 0) {
        SNDR_HISTOGRAM_OBSERVE(
            "serve.job_exact_cache_hit_rate",
            obs::safe_ratio(exact_hits, exact_hits + exact_misses));
      }
      const std::int64_t geo_hits =
          outcome.metrics.counter("extract.nets_materialized_from_cache");
      const std::int64_t geo_walks =
          outcome.metrics.counter("extract.nets_fresh_walks");
      if (geo_hits + geo_walks > 0) {
        SNDR_HISTOGRAM_OBSERVE("serve.job_geometry_cache_hit_rate",
                               obs::safe_ratio(geo_hits, geo_hits + geo_walks));
      }
      if (outcome.status.code() == common::StatusCode::kCancelled) {
        SNDR_COUNTER_ADD("serve.jobs_cancelled", 1);
      } else if (outcome.ok()) {
        SNDR_COUNTER_ADD("serve.jobs_completed", 1);
      } else {
        SNDR_COUNTER_ADD("serve.jobs_failed", 1);
      }
    }
    entry.record.outcome = std::move(outcome);
    entry.record.state = JobState::kDone;
    entry.done = true;
    done_cv_.notify_all();
    work_cv_.notify_all();  // memory freed: the head may fit now.
  }
}

void Server::shutdown(Shutdown mode) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    accepting_ = false;
    if (mode == Shutdown::kCancel) {
      for (auto& [id, entry] : jobs_) {
        if (!entry->done) entry->token.cancel();
      }
    }
    work_cv_.notify_all();
    // Graceful either way: wait until every queued/running job reached a
    // terminal record (drain: ran to completion; cancel: unwound or was
    // never started).
    done_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    stop_ = true;
    work_cv_.notify_all();
  }
  if (!joined_) {
    for (std::thread& w : workers_) w.join();
    joined_ = true;
  }
}

std::vector<JobRecord> Server::drain() {
  shutdown(Shutdown::kDrain);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobRecord> records;
  records.reserve(jobs_.size());
  for (const auto& [id, entry] : jobs_) records.push_back(entry->record);
  return records;  // std::map iteration: ascending id.
}

int Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

obs::MetricsRegistry::Snapshot Server::metrics_snapshot() {
  obs::ScopeBinding binding(scope_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SNDR_GAUGE_SET("serve.queue_depth", static_cast<double>(queue_.size()));
    SNDR_GAUGE_SET("serve.jobs_running", static_cast<double>(running_));
  }
  return scope_.metrics().snapshot();
}

}  // namespace sndr::serve
