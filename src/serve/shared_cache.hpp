// SharedCache: cross-job reuse of the immutable half of a run.
//
// A multi-tenant server runs many jobs against few distinct inputs; the
// cache keys each immutable artifact by a *content* fingerprint (FNV-1a
// over the file bytes — renaming or touching a file does not defeat
// sharing, editing it does) and hands out refcounted handles:
//
//   * Technology: parsed once per distinct tech file (or the built-in
//     default), shared read-only by every job that names it.
//   * RuleImpactPredictor: trained once per distinct (design content,
//     tech content, training_samples) triple and harvested from the first
//     job's result (SmartNdrResult::trained_predictor); later jobs skip
//     the train stage entirely. Training is deterministic in exactly that
//     key, so a cache hit is bitwise identical to training fresh — the
//     serve soak bench asserts this against serial CLI runs.
//
// Failure never flows through the cache: when an input file cannot be
// read, acquire() returns an invalid lease and the job's own Session
// reproduces the canonical error (same loader, same message, same error
// order as the standalone CLI).
//
// Thread safety: every method is safe to call concurrently; the mutex
// guards only the maps, never a parse or a train (those happen outside,
// keyed work may race benignly — last identical value wins).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "flow/config.hpp"
#include "flow/world.hpp"

namespace sndr::serve {

/// FNV-1a(64) over the file's bytes, as 16 hex digits. kNotFound when the
/// file cannot be opened, kIoError on a read failure.
common::Result<std::string> file_fingerprint(const std::string& path);

class SharedCache {
 public:
  struct Lease {
    /// False when fingerprinting/parsing an input failed — the job should
    /// proceed without set_world() and let its Session report the error
    /// through the canonical loaders.
    bool valid = false;
    flow::World world;
    /// Non-empty when this job's config makes predictor reuse applicable
    /// (smart flow, models scoring): the key to store_predictor() the
    /// trained model under after the run. world.predictor is already set
    /// on a cache hit.
    std::string predictor_key;
  };

  /// Resolves config.tech_path (or the default technology) and, when
  /// applicable, a previously-harvested predictor into a World.
  Lease acquire(const flow::FlowConfig& config);

  /// Publishes a trained predictor under `key` (from Lease::predictor_key).
  /// Idempotent; concurrent stores of the same key keep the last one —
  /// identical by determinism, so the race is benign.
  void store_predictor(
      const std::string& key,
      std::shared_ptr<const ndr::RuleImpactPredictor> predictor);

  struct Stats {
    std::int64_t tech_hits = 0;
    std::int64_t tech_misses = 0;
    std::int64_t predictor_hits = 0;
    std::int64_t predictor_misses = 0;
    std::int64_t predictor_stores = 0;
  };
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const tech::Technology>> tech_;
  std::map<std::string, std::shared_ptr<const ndr::RuleImpactPredictor>>
      predictors_;
  Stats stats_;
};

}  // namespace sndr::serve
