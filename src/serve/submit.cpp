#include "serve/submit.hpp"

#include <chrono>
#include <utility>

#include "flow/session.hpp"

namespace sndr::serve {

JobOutcome execute_job(flow::FlowConfig config, SharedCache* cache,
                       common::CancelToken token) {
  const auto t0 = std::chrono::steady_clock::now();
  JobOutcome out;

  if (config.dse) {
    // A DSE job is a whole sweep: the explorer owns the per-point sessions
    // (warm-start chaining is inherently sequential), so it runs in this
    // worker's lane rather than fanning out across the pool. The shared
    // World still comes from the cache, and a predictor trained by the
    // sweep's first point is harvested back.
    std::string predictor_key;
    flow::World world;
    dse::ExploreOptions eo;
    eo.cancel = token;
    if (cache != nullptr) {
      SharedCache::Lease lease = cache->acquire(config);
      if (lease.valid) {
        predictor_key = lease.predictor_key;
        world = std::move(lease.world);
        eo.world = &world;
      }
    }
    common::Result<dse::SweepResult> sweep = dse::explore(config, eo);
    if (sweep.ok()) {
      out.dse = std::move(sweep).value();
      out.design_name = config.design_path;
      out.nets = out.dse->n_nets;
      if (cache != nullptr && !predictor_key.empty() &&
          out.dse->trained_predictor != nullptr) {
        cache->store_predictor(predictor_key, out.dse->trained_predictor);
      }
      out.metrics = out.dse->metrics;
    } else {
      out.status = sweep.status();
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
  }

  flow::Session session(std::move(config));
  session.cancel_token() = std::move(token);

  std::string predictor_key;
  if (cache != nullptr) {
    SharedCache::Lease lease = cache->acquire(session.config());
    if (lease.valid) {
      predictor_key = lease.predictor_key;
      session.set_world(std::move(lease.world));
    }
    // Invalid lease: run without a shared World — Session::load() walks
    // the same loaders in the same order and reports the canonical error.
  }

  flow::Flow flow(session);
  common::Result<flow::FlowResult> run = flow.run();
  if (run.ok()) {
    out.result = std::move(run).value();
    out.design_name = session.design().name;
    out.sinks = session.design().sinks.size();
    out.buffers = session.cts().buffers;
    out.nets = session.nets().size();
    out.wirelength = session.cts().wirelength;
    if (cache != nullptr && !predictor_key.empty() && out.result->smart) {
      cache->store_predictor(predictor_key,
                             out.result->smart->trained_predictor);
    }
  } else {
    out.status = run.status();
  }
  out.metrics = session.obs_scope().metrics().snapshot();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace sndr::serve
