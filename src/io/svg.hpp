// SVG rendering of a routed clock tree.
//
// Draws the core outline, the congestion heat field, every routed wire
// colored by its assigned NDR (stroke width scaled by the rule's wire
// width), buffers as squares, sinks as dots, and a legend. The output is a
// standalone .svg any browser renders — the fastest way to eyeball a rule
// assignment.
#pragma once

#include <string>
#include <vector>

#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"

namespace sndr::io {

struct SvgOptions {
  double canvas_px = 900.0;     ///< width/height of the drawing area.
  bool draw_congestion = true;  ///< shade cells by occupancy.
  bool draw_sinks = true;
  bool draw_buffers = true;
  bool draw_legend = true;
};

/// Renders the tree under a rule assignment (one rule index per net; pass
/// an all-equal assignment to view a baseline).
std::string render_svg(const netlist::ClockTree& tree,
                       const netlist::Design& design,
                       const tech::Technology& tech,
                       const netlist::NetList& nets,
                       const std::vector<int>& rule_of_net,
                       const SvgOptions& options = {});

/// Convenience: render into a file. Throws std::runtime_error on I/O error.
void write_svg_file(const std::string& path, const netlist::ClockTree& tree,
                    const netlist::Design& design,
                    const tech::Technology& tech,
                    const netlist::NetList& nets,
                    const std::vector<int>& rule_of_net,
                    const SvgOptions& options = {});

}  // namespace sndr::io
