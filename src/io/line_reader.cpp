#include "io/line_reader.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>

namespace sndr::io {

bool IstreamLineSource::next(std::string_view& line) {
  if (!std::getline(*is_, buf_)) return false;
  if (!buf_.empty() && buf_.back() == '\r') buf_.pop_back();
  line = buf_;
  return true;
}

LineReader::LineReader(const std::string& path, std::size_t chunk_bytes)
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {
  file_ = std::fopen(path.c_str(), "rb");
  buf_.resize(chunk_bytes_);
}

LineReader::~LineReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool LineReader::fill() {
  if (eof_ || file_ == nullptr) return false;
  // Compact the unconsumed tail to the front so views into the new chunk
  // cover whole lines. (Views handed out earlier are already dead — the
  // LineSource contract is one live line at a time.)
  if (pos_ > 0) {
    std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  if (end_ == buf_.size()) {
    // One line spans the whole buffer: grow so it can complete.
    buf_.resize(buf_.size() * 2);
  }
  const std::size_t got =
      std::fread(buf_.data() + end_, 1, buf_.size() - end_, file_);
  end_ += got;
  if (got == 0) eof_ = true;
  return got > 0;
}

bool LineReader::next(std::string_view& line) {
  if (file_ == nullptr) return false;
  for (;;) {
    const char* base = buf_.data() + pos_;
    const std::size_t avail = end_ - pos_;
    const char* nl = static_cast<const char*>(std::memchr(base, '\n', avail));
    if (nl != nullptr) {
      std::size_t len = static_cast<std::size_t>(nl - base);
      if (len > 0 && base[len - 1] == '\r') --len;
      line = std::string_view(base, len);
      pos_ += static_cast<std::size_t>(nl - base) + 1;
      return true;
    }
    if (!fill()) {
      // Final line without a terminator.
      if (avail == 0) return false;
      std::size_t len = avail;
      const char* tail = buf_.data() + pos_;  // fill() may have compacted.
      if (len > 0 && tail[len - 1] == '\r') --len;
      line = std::string_view(tail, len);
      pos_ = end_;
      return true;
    }
  }
}

namespace {

constexpr bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

std::string_view skip_space(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && is_space(s[i])) ++i;
  return s.substr(i);
}

}  // namespace

bool Tokenizer::next(std::string_view& tok) {
  rest_ = skip_space(rest_);
  if (rest_.empty()) return false;
  std::size_t i = 0;
  while (i < rest_.size() && !is_space(rest_[i])) ++i;
  tok = rest_.substr(0, i);
  rest_ = rest_.substr(i);
  return true;
}

bool Tokenizer::next_double(double& out) {
  std::string_view tok;
  if (!next(tok)) return false;
  if (!tok.empty() && tok.front() == '+') tok.remove_prefix(1);
  if (tok.empty()) return false;
  const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(),
                                       out);
  return ec == std::errc() && p == tok.data() + tok.size();
}

bool Tokenizer::next_int(int& out) {
  std::string_view tok;
  if (!next(tok)) return false;
  if (!tok.empty() && tok.front() == '+') tok.remove_prefix(1);
  if (tok.empty()) return false;
  const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(),
                                       out);
  return ec == std::errc() && p == tok.data() + tok.size();
}

bool Tokenizer::exhausted() const { return skip_space(rest_).empty(); }

}  // namespace sndr::io
