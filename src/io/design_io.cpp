#include "io/design_io.hpp"

#include <fstream>
#include <iomanip>
#include <stdexcept>

#include "io/line_reader.hpp"
#include "tech/units.hpp"

namespace sndr::io {

void write_design(std::ostream& os, const netlist::Design& design) {
  os << std::setprecision(10);
  os << "design " << design.name << "\n";
  os << "core " << design.core.lo().x << ' ' << design.core.lo().y << ' '
     << design.core.hi().x << ' ' << design.core.hi().y << "\n";
  os << "clock_root " << design.clock_root.x << ' ' << design.clock_root.y
     << "\n";
  const netlist::ClockConstraints& c = design.constraints;
  os << "clock_freq_ghz " << c.clock_freq / units::GHz << "\n";
  os << "max_slew_ps " << units::to_ps(c.max_slew) << "\n";
  os << "max_skew_ps " << units::to_ps(c.max_skew) << "\n";
  os << "max_uncertainty_ps " << units::to_ps(c.max_uncertainty) << "\n";
  if (design.congestion.valid()) {
    const netlist::CongestionMap& m = design.congestion;
    os << "congestion " << m.nx() << ' ' << m.ny() << " 0 "
       << m.capacity_cell(0) << "\n";
    for (int i = 0; i < m.cell_count(); ++i) {
      os << "occupancy_cell " << i << ' ' << m.occupancy_cell(i) << "\n";
    }
  }
  for (const netlist::Sink& s : design.sinks) {
    os << "sink " << s.name << ' ' << s.loc.x << ' ' << s.loc.y << ' '
       << units::to_fF(s.pin_cap) << "\n";
  }
  if (design.useful_skew.enabled()) {
    for (std::size_t i = 0; i < design.useful_skew.lo.size(); ++i) {
      os << "window " << i << ' '
         << units::to_ps(design.useful_skew.lo[i]) << ' '
         << units::to_ps(design.useful_skew.hi[i]) << "\n";
    }
  }
}

void write_design_file(const std::string& path,
                       const netlist::Design& design) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("write_design_file: cannot open " + path);
  }
  write_design(f, design);
}

namespace {

[[noreturn]] void design_error(const std::string& source, int line_no,
                               const std::string& what) {
  throw common::ParseError(source + ":" + std::to_string(line_no) + ": " +
                           what);
}

}  // namespace

namespace {

/// The one design parser: both the istream entry point and the chunked
/// file path feed it lines, so diagnostics and semantics cannot diverge.
netlist::Design read_design_lines(LineSource& src, const std::string& source) {
  netlist::Design d;
  bool have_core = false;
  int cong_nx = 0;
  int cong_ny = 0;
  double cong_occ = 0.0;
  double cong_cap = 0.0;
  std::vector<std::pair<int, double>> occ_cells;
  std::vector<std::tuple<int, double, double>> windows;

  std::string_view line;
  int line_no = 0;
  while (src.next(line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    Tokenizer ls(line);
    std::string_view key;
    if (!ls.next(key)) continue;

    if (key == "design") {
      std::string_view name;
      if (ls.next(name)) d.name = std::string(name);
    } else if (key == "core") {
      double x0, y0, x1, y1;
      if (!ls.next_double(x0) || !ls.next_double(y0) || !ls.next_double(x1) ||
          !ls.next_double(y1)) {
        design_error(source, line_no, "bad core");
      }
      d.core = geom::BBox(x0, y0, x1, y1);
      have_core = true;
    } else if (key == "clock_root") {
      if (!ls.next_double(d.clock_root.x) ||
          !ls.next_double(d.clock_root.y)) {
        design_error(source, line_no, "bad clock_root");
      }
    } else if (key == "clock_freq_ghz") {
      double v;
      if (!ls.next_double(v)) design_error(source, line_no,
                                           "bad clock_freq_ghz");
      d.constraints.clock_freq = v * units::GHz;
    } else if (key == "max_slew_ps") {
      double v;
      if (!ls.next_double(v)) design_error(source, line_no, "bad max_slew_ps");
      d.constraints.max_slew = v * units::ps;
    } else if (key == "max_skew_ps") {
      double v;
      if (!ls.next_double(v)) design_error(source, line_no, "bad max_skew_ps");
      d.constraints.max_skew = v * units::ps;
    } else if (key == "max_uncertainty_ps") {
      double v;
      if (!ls.next_double(v)) {
        design_error(source, line_no, "bad max_uncertainty_ps");
      }
      d.constraints.max_uncertainty = v * units::ps;
    } else if (key == "congestion") {
      if (!ls.next_int(cong_nx) || !ls.next_int(cong_ny) ||
          !ls.next_double(cong_occ) || !ls.next_double(cong_cap)) {
        design_error(source, line_no, "bad congestion");
      }
    } else if (key == "occupancy_cell") {
      int idx;
      double v;
      if (!ls.next_int(idx) || !ls.next_double(v)) {
        design_error(source, line_no, "bad occupancy_cell");
      }
      occ_cells.emplace_back(idx, v);
    } else if (key == "sink") {
      netlist::Sink s;
      std::string_view name;
      double cap_ff;
      if (!ls.next(name) || !ls.next_double(s.loc.x) ||
          !ls.next_double(s.loc.y) || !ls.next_double(cap_ff)) {
        design_error(source, line_no, "bad sink");
      }
      s.name = std::string(name);
      s.pin_cap = cap_ff * units::fF;
      d.sinks.push_back(std::move(s));
    } else if (key == "window") {
      int idx;
      double lo, hi;
      if (!ls.next_int(idx) || !ls.next_double(lo) || !ls.next_double(hi)) {
        design_error(source, line_no, "bad window");
      }
      windows.emplace_back(idx, lo * units::ps, hi * units::ps);
    } else {
      design_error(source, line_no,
                   "unknown key '" + std::string(key) + "'");
    }
  }

  if (!have_core) {
    // Derive a core from the sink bounding box with a small margin.
    geom::BBox box;
    for (const netlist::Sink& s : d.sinks) box.extend(s.loc);
    box.extend(d.clock_root);
    box.inflate(1.0);
    d.core = box;
  }
  if (cong_nx > 0 && cong_ny > 0) {
    d.congestion =
        netlist::CongestionMap(d.core, cong_nx, cong_ny, cong_occ, cong_cap);
    for (const auto& [idx, v] : occ_cells) {
      if (idx < 0 || idx >= d.congestion.cell_count()) {
        throw common::ParseError(source +
                                 ": occupancy_cell index out of range");
      }
      d.congestion.set_occupancy_cell(idx, v);
    }
  }
  if (!windows.empty()) {
    d.useful_skew.lo.assign(d.sinks.size(), -d.constraints.max_skew / 2);
    d.useful_skew.hi.assign(d.sinks.size(), d.constraints.max_skew / 2);
    for (const auto& [idx, lo, hi] : windows) {
      if (idx < 0 || idx >= static_cast<int>(d.sinks.size())) {
        throw common::ParseError(source + ": window index out of range");
      }
      d.useful_skew.lo[idx] = lo;
      d.useful_skew.hi[idx] = hi;
    }
  }
  return d;
}

}  // namespace

netlist::Design read_design(std::istream& is, const std::string& source) {
  IstreamLineSource src(is);
  return read_design_lines(src, source);
}

netlist::Design read_design_file(const std::string& path) {
  LineReader src(path);
  if (!src.ok()) {
    throw std::runtime_error("read_design_file: cannot open " + path);
  }
  return read_design_lines(src, path);
}

common::Result<netlist::Design> load_design_file(const std::string& path) {
  // Chunked reader: the file streams through a fixed buffer instead of an
  // ifstream + per-line istringstream, so ingest memory is independent of
  // the design size.
  LineReader src(path);
  if (!src.ok()) {
    return common::Status::NotFound("cannot open design file " + path);
  }
  try {
    return read_design_lines(src, path);
  } catch (...) {
    return common::classify_exception(common::StatusCode::kIoError);
  }
}

}  // namespace sndr::io
