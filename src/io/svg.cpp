#include "io/svg.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sndr::io {

namespace {

// Categorical palette for rules (cycled if a rule set is larger).
const char* kRuleColors[] = {"#4477aa", "#66ccee", "#228833",
                             "#ccbb44", "#ee6677", "#aa3377",
                             "#bbbbbb"};
constexpr int kNumColors = 7;

struct Mapper {
  geom::BBox core;
  double scale = 1.0;
  double pad = 20.0;

  double x(double ux) const { return pad + (ux - core.lo().x) * scale; }
  // SVG y grows downward; flip so the layout reads like a floorplan.
  double y(double uy) const {
    return pad + (core.hi().y - uy) * scale;
  }
};

}  // namespace

std::string render_svg(const netlist::ClockTree& tree,
                       const netlist::Design& design,
                       const tech::Technology& tech,
                       const netlist::NetList& nets,
                       const std::vector<int>& rule_of_net,
                       const SvgOptions& options) {
  if (rule_of_net.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument("render_svg: rule assignment mismatch");
  }
  Mapper m;
  m.core = design.core;
  const double span = std::max(design.core.width(), design.core.height());
  m.scale = (options.canvas_px - 2 * m.pad) / std::max(span, 1e-9);
  const double w = options.canvas_px;
  const double legend_h = options.draw_legend ? 26.0 : 0.0;
  const double h = 2 * m.pad + design.core.height() * m.scale + legend_h;

  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
     << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << ' ' << h
     << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  if (options.draw_congestion && design.congestion.valid()) {
    os << "<g>\n";
    for (int ci = 0; ci < design.congestion.cell_count(); ++ci) {
      const geom::BBox cell = design.congestion.cell_box(ci);
      const double occ = design.congestion.occupancy_cell(ci);
      const int shade = static_cast<int>(255 - 80 * occ);
      os << "<rect x=\"" << m.x(cell.lo().x) << "\" y=\"" << m.y(cell.hi().y)
         << "\" width=\"" << cell.width() * m.scale << "\" height=\""
         << cell.height() * m.scale << "\" fill=\"rgb(" << shade << ','
         << shade << ",255)\" fill-opacity=\"0.35\"/>\n";
    }
    os << "</g>\n";
  }

  // Core outline.
  os << "<rect x=\"" << m.x(design.core.lo().x) << "\" y=\""
     << m.y(design.core.hi().y) << "\" width=\""
     << design.core.width() * m.scale << "\" height=\""
     << design.core.height() * m.scale
     << "\" fill=\"none\" stroke=\"#444\" stroke-width=\"1\"/>\n";

  // Wires, one polyline per edge, colored by the owning net's rule.
  os << "<g fill=\"none\" stroke-linecap=\"round\">\n";
  for (int v = 0; v < tree.size(); ++v) {
    const netlist::TreeNode& n = tree.node(v);
    if (n.parent < 0) continue;
    const int net_id = nets.net_of_edge[v];
    if (net_id < 0) continue;
    const int rule = rule_of_net[net_id];
    geom::Path path = n.path;
    if (path.size() < 2) path = {tree.loc(n.parent), n.loc};
    os << "<polyline points=\"";
    for (const geom::Point& p : path) {
      os << m.x(p.x) << ',' << m.y(p.y) << ' ';
    }
    os << "\" stroke=\"" << kRuleColors[rule % kNumColors]
       << "\" stroke-width=\""
       << 0.8 + 0.7 * tech.rules[rule].width_mult << "\"/>\n";
  }
  os << "</g>\n";

  if (options.draw_sinks) {
    os << "<g fill=\"#333\">\n";
    for (const netlist::Sink& s : design.sinks) {
      os << "<circle cx=\"" << m.x(s.loc.x) << "\" cy=\"" << m.y(s.loc.y)
         << "\" r=\"1.2\"/>\n";
    }
    os << "</g>\n";
  }

  if (options.draw_buffers) {
    os << "<g fill=\"#d62728\" stroke=\"white\" stroke-width=\"0.5\">\n";
    for (int v = 0; v < tree.size(); ++v) {
      if (tree.node(v).kind != netlist::NodeKind::kBuffer) continue;
      const geom::Point p = tree.loc(v);
      os << "<rect x=\"" << m.x(p.x) - 2.2 << "\" y=\"" << m.y(p.y) - 2.2
         << "\" width=\"4.4\" height=\"4.4\"/>\n";
    }
    os << "</g>\n";
  }

  if (options.draw_legend) {
    double lx = m.pad;
    const double ly = h - 14.0;
    os << "<g font-family=\"sans-serif\" font-size=\"11\">\n";
    for (int r = 0; r < tech.rules.size(); ++r) {
      os << "<rect x=\"" << lx << "\" y=\"" << ly - 9 << "\" width=\"14\""
         << " height=\"10\" fill=\"" << kRuleColors[r % kNumColors]
         << "\"/>\n";
      os << "<text x=\"" << lx + 18 << "\" y=\"" << ly << "\">"
         << tech.rules[r].name << "</text>\n";
      lx += 26.0 + 8.0 * tech.rules[r].name.size();
    }
    os << "<text x=\"" << lx + 10 << "\" y=\"" << ly << "\" fill=\"#666\">"
       << design.name << ": " << design.sinks.size() << " sinks, "
       << nets.size() << " nets</text>\n";
    os << "</g>\n";
  }

  os << "</svg>\n";
  return os.str();
}

void write_svg_file(const std::string& path, const netlist::ClockTree& tree,
                    const netlist::Design& design,
                    const tech::Technology& tech,
                    const netlist::NetList& nets,
                    const std::vector<int>& rule_of_net,
                    const SvgOptions& options) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_svg_file: cannot open " + path);
  f << render_svg(tree, design, tech, nets, rule_of_net, options);
}

}  // namespace sndr::io
