// Streaming line input for the text parsers.
//
// The design and SPEF readers are line-oriented; at million-net scale the
// files run to hundreds of megabytes, so materializing them (or paying an
// istringstream per line) dominates ingest. This module gives the parsers
// a zero-copy path:
//
//  * LineSource — the minimal "next line, please" interface both the
//    istream entry points (API compatibility) and the chunked file path
//    implement, so each format has exactly one parser.
//  * LineReader — chunked FILE* reads (256 KiB at a time) surfacing each
//    line as a std::string_view into the read buffer: no per-line
//    allocation, no whole-file string, memory bounded by the longest line.
//  * Tokenizer — whitespace splitting plus std::from_chars numeric
//    parsing over one line, replacing istringstream in the hot loop.
//
// Line numbering stays with the caller, so ParseError diagnostics keep
// their exact path:line shape.
#pragma once

#include <cstddef>
#include <cstdio>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

namespace sndr::io {

/// Producer of lines (terminators stripped). The returned view is valid
/// only until the next call.
class LineSource {
 public:
  virtual ~LineSource() = default;
  virtual bool next(std::string_view& line) = 0;
};

/// std::getline adapter: the `read_*(std::istream&)` entry points route
/// through this so streamed and file-backed parsing share one code path.
class IstreamLineSource final : public LineSource {
 public:
  explicit IstreamLineSource(std::istream& is) : is_(&is) {}
  bool next(std::string_view& line) override;

 private:
  std::istream* is_;
  std::string buf_;
};

/// Chunked file reader. Reads `chunk_bytes` at a time into one reusable
/// buffer and hands out string_views of complete lines; the partial line
/// at a chunk boundary is compacted to the buffer front before the next
/// read, and a line longer than the buffer grows it (amortized — the
/// buffer never shrinks back). Handles \n and \r\n; a final unterminated
/// line is returned too.
class LineReader final : public LineSource {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

  explicit LineReader(const std::string& path,
                      std::size_t chunk_bytes = kDefaultChunkBytes);
  ~LineReader() override;
  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;

  /// False when the file could not be opened (next() then reports EOF).
  bool ok() const { return file_ != nullptr; }

  bool next(std::string_view& line) override;

 private:
  /// Refills the tail of the buffer; false when the file is exhausted.
  bool fill();

  std::FILE* file_ = nullptr;
  std::size_t chunk_bytes_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;   ///< start of the unconsumed region.
  std::size_t end_ = 0;   ///< end of valid bytes in buf_.
  bool eof_ = false;
};

/// Whitespace tokenizer over one line with from_chars numeric parsing.
/// Numeric extraction consumes whole tokens: "1.5x" is a parse error here
/// (istringstream would have peeled off the 1.5), which is the strictness
/// the formats document — typos should not parse.
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view line) : rest_(line) {}

  /// Next whitespace-delimited token; false when the line is exhausted.
  bool next(std::string_view& tok);

  /// Numeric variants; false on exhaustion or a non-numeric token.
  /// A leading '+' is accepted (from_chars alone rejects it).
  bool next_double(double& out);
  bool next_int(int& out);

  /// Everything after the current position, untrimmed (e.g. the quoted
  /// remainder of a *DESIGN line).
  std::string_view rest() const { return rest_; }

  /// True when only whitespace remains.
  bool exhausted() const;

 private:
  std::string_view rest_;
};

}  // namespace sndr::io
