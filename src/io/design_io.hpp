// Text interchange for designs: a minimal, line-oriented format so users
// can bring their own sink placements and constraints to the CLI and the
// library without writing C++.
//
//   design <name>
//   core <x0> <y0> <x1> <y1>              # um
//   clock_root <x> <y>
//   clock_freq_ghz <f>
//   max_slew_ps <v> | max_skew_ps <v> | max_uncertainty_ps <v>
//   congestion <nx> <ny> <occupancy> <capacity_per_cell>   # optional
//   occupancy_cell <index> <value>                         # optional
//   sink <name> <x> <y> <pin_cap_ff>
//   window <sink_index> <lo_ps> <hi_ps>                    # useful skew
//
// '#' starts a comment. Unknown keys are an error (typos should not parse).
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "netlist/design.hpp"

namespace sndr::io {

void write_design(std::ostream& os, const netlist::Design& design);
void write_design_file(const std::string& path,
                       const netlist::Design& design);

/// Throws common::ParseError with a "<source>:<line>: message" diagnostic
/// on malformed input; `source` names the stream in that diagnostic
/// (pass the file path when reading a file).
netlist::Design read_design(std::istream& is,
                            const std::string& source = "<stream>");
netlist::Design read_design_file(const std::string& path);

/// Error-boundary variant of read_design_file: kNotFound when the file
/// cannot be opened, kParseError with a path:line diagnostic on malformed
/// input; never throws.
common::Result<netlist::Design> load_design_file(const std::string& path);

}  // namespace sndr::io
