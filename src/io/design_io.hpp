// Text interchange for designs: a minimal, line-oriented format so users
// can bring their own sink placements and constraints to the CLI and the
// library without writing C++.
//
//   design <name>
//   core <x0> <y0> <x1> <y1>              # um
//   clock_root <x> <y>
//   clock_freq_ghz <f>
//   max_slew_ps <v> | max_skew_ps <v> | max_uncertainty_ps <v>
//   congestion <nx> <ny> <occupancy> <capacity_per_cell>   # optional
//   occupancy_cell <index> <value>                         # optional
//   sink <name> <x> <y> <pin_cap_ff>
//   window <sink_index> <lo_ps> <hi_ps>                    # useful skew
//
// '#' starts a comment. Unknown keys are an error (typos should not parse).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace sndr::io {

void write_design(std::ostream& os, const netlist::Design& design);
void write_design_file(const std::string& path,
                       const netlist::Design& design);

/// Throws std::runtime_error with a line diagnostic on malformed input.
netlist::Design read_design(std::istream& is);
netlist::Design read_design_file(const std::string& path);

}  // namespace sndr::io
