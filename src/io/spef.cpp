#include "io/spef.hpp"

#include <fstream>
#include <iomanip>
#include <stdexcept>
#include <string_view>

#include "io/line_reader.hpp"

namespace sndr::io {

namespace {

std::string pin_name(const netlist::ClockTree& tree, int node_id) {
  const netlist::TreeNode& n = tree.node(node_id);
  switch (n.kind) {
    case netlist::NodeKind::kSource:
      return "src:Z";
    case netlist::NodeKind::kBuffer:
      return "buf_" + std::to_string(node_id);  // port added by caller.
    case netlist::NodeKind::kSink:
      return "sink_" + std::to_string(n.sink) + ":CK";
    case netlist::NodeKind::kSteiner:
      break;
  }
  return "steiner_" + std::to_string(node_id);
}

std::string rc_node_name(int net_id, int rc_index) {
  return "clk_net_" + std::to_string(net_id) + ":" +
         std::to_string(rc_index);
}

}  // namespace

void write_spef(std::ostream& os, const netlist::ClockTree& tree,
                const netlist::Design& design,
                const netlist::NetList& nets,
                const std::vector<extract::NetParasitics>& parasitics,
                const SpefWriteOptions& options) {
  if (parasitics.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument("write_spef: parasitics size mismatch");
  }
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << design.name << "\"\n";
  os << "*DATE \"-\"\n";
  os << "*VENDOR \"sndr\"\n";
  os << "*PROGRAM \"" << options.program << "\"\n";
  os << "*VERSION \"" << options.version << "\"\n";
  os << "*DESIGN_FLOW \"COUPLING_AS_GROUND " << options.miller_power
     << "\"\n";
  os << "*DIVIDER /\n*DELIMITER :\n*BUS_DELIMITER [ ]\n";
  os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n\n";

  os << std::fixed << std::setprecision(6);
  for (const netlist::Net& net : nets.nets) {
    const extract::NetParasitics& par = parasitics[net.id];
    const double total_ff =
        par.switched_cap(options.miller_power) / 1e-15;
    os << "*D_NET clk_net_" << net.id << ' ' << total_ff << "\n";

    os << "*CONN\n";
    const netlist::TreeNode& drv = tree.node(net.driver);
    if (drv.kind == netlist::NodeKind::kSource) {
      os << "*P src:Z O\n";
    } else {
      os << "*I buf_" << net.driver << ":Z O\n";
    }
    for (const int load : net.loads) {
      const netlist::TreeNode& ln = tree.node(load);
      if (ln.kind == netlist::NodeKind::kBuffer) {
        os << "*I buf_" << load << ":A I\n";
      } else {
        os << "*I " << pin_name(tree, load) << " I\n";
      }
    }

    os << "*CAP\n";
    int idx = 1;
    for (int i = 0; i < par.rc.size(); ++i) {
      const extract::RcNode& n = par.rc.node(i);
      const double cap =
          n.cap_gnd + options.miller_power * n.cap_cpl;
      if (cap <= 0.0) continue;
      os << idx++ << ' ' << rc_node_name(net.id, i) << ' ' << cap / 1e-15
         << "\n";
    }

    os << "*RES\n";
    idx = 1;
    for (int i = 1; i < par.rc.size(); ++i) {
      const extract::RcNode& n = par.rc.node(i);
      os << idx++ << ' ' << rc_node_name(net.id, n.parent) << ' '
         << rc_node_name(net.id, i) << ' ' << n.res << "\n";
    }
    os << "*END\n\n";
  }
}

void write_spef_file(const std::string& path, const netlist::ClockTree& tree,
                     const netlist::Design& design,
                     const netlist::NetList& nets,
                     const std::vector<extract::NetParasitics>& parasitics,
                     const SpefWriteOptions& options) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_spef_file: cannot open " + path);
  write_spef(f, tree, design, nets, parasitics, options);
}

double SpefNet::cap_sum() const {
  double c = 0.0;
  for (const auto& [node, cap] : caps) c += cap;
  return c;
}

const SpefNet* SpefFile::find(const std::string& name) const {
  for (const SpefNet& n : nets) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

namespace {

[[noreturn]] void spef_error(const std::string& source, int line_no,
                             const std::string& what) {
  throw common::ParseError(source + ":" + std::to_string(line_no) + ": " +
                           what);
}

double unit_scale(const std::string& source, std::string_view mult,
                  std::string_view unit, int line_no) {
  // Full-token from_chars (not std::stod): a malformed multiplier must
  // report as a ParseError with a path:line diagnostic, not escape as
  // std::invalid_argument and classify as an I/O failure.
  double m = 0.0;
  Tokenizer ms(mult);
  if (!ms.next_double(m) || !ms.exhausted()) {
    spef_error(source, line_no,
               "bad unit multiplier '" + std::string(mult) + "'");
  }
  if (unit == "PS") return m * 1e-12;
  if (unit == "NS") return m * 1e-9;
  if (unit == "FF") return m * 1e-15;
  if (unit == "PF") return m * 1e-12;
  if (unit == "OHM") return m;
  if (unit == "KOHM") return m * 1e3;
  if (unit == "HENRY") return m;
  spef_error(source, line_no, "unknown unit '" + std::string(unit) + "'");
}

/// The one SPEF parser (istream and chunked-file paths both feed it).
SpefFile read_spef_lines(LineSource& src, const std::string& source) {
  SpefFile out;
  std::string_view line;
  int line_no = 0;
  enum class Section { kNone, kConn, kCap, kRes };
  Section section = Section::kNone;
  SpefNet* current = nullptr;

  while (src.next(line)) {
    ++line_no;
    Tokenizer ls(line);
    std::string_view tok;
    if (!ls.next(tok)) continue;

    if (tok == "*DESIGN") {
      const std::string_view rest = ls.rest();
      const auto q1 = rest.find('"');
      const auto q2 = rest.rfind('"');
      if (q1 != std::string_view::npos && q2 > q1) {
        out.design_name = std::string(rest.substr(q1 + 1, q2 - q1 - 1));
      }
    } else if (tok == "*T_UNIT" || tok == "*C_UNIT" || tok == "*R_UNIT") {
      std::string_view mult;
      std::string_view unit;
      if (!ls.next(mult) || !ls.next(unit)) {
        spef_error(source, line_no, "bad unit line");
      }
      const double scale = unit_scale(source, mult, unit, line_no);
      if (tok == "*T_UNIT") out.time_unit = scale;
      if (tok == "*C_UNIT") out.cap_unit = scale;
      if (tok == "*R_UNIT") out.res_unit = scale;
    } else if (tok == "*D_NET") {
      SpefNet net;
      std::string_view name;
      double total = 0.0;
      if (!ls.next(name) || !ls.next_double(total)) {
        spef_error(source, line_no, "bad *D_NET");
      }
      net.name = std::string(name);
      net.total_cap = total;  // scaled after units are final, below.
      out.nets.push_back(std::move(net));
      current = &out.nets.back();
      section = Section::kNone;
    } else if (tok == "*CONN") {
      section = Section::kConn;
    } else if (tok == "*CAP") {
      section = Section::kCap;
    } else if (tok == "*RES") {
      section = Section::kRes;
    } else if (tok == "*END") {
      current = nullptr;
      section = Section::kNone;
    } else if (tok[0] == '*') {
      // Header keywords we do not interpret.
      continue;
    } else if (current != nullptr && section == Section::kCap) {
      // Format: <index> <node> <cap>; `tok` holds the index.
      int idx = 0;
      Tokenizer head(tok);
      std::string_view node;
      double cap = 0.0;
      if (!head.next_int(idx) || !ls.next(node) || !ls.next_double(cap)) {
        spef_error(source, line_no, "bad *CAP entry");
      }
      current->caps.emplace_back(std::string(node), cap * out.cap_unit);
    } else if (current != nullptr && section == Section::kRes) {
      // Format: <index> <node_a> <node_b> <ohm>; `tok` holds the index.
      int idx = 0;
      Tokenizer head(tok);
      SpefNet::Res r;
      std::string_view a;
      std::string_view b;
      double ohm = 0.0;
      if (!head.next_int(idx) || !ls.next(a) || !ls.next(b) ||
          !ls.next_double(ohm)) {
        spef_error(source, line_no, "bad *RES entry");
      }
      r.a = std::string(a);
      r.b = std::string(b);
      r.ohm = ohm * out.res_unit;
      current->resistors.push_back(std::move(r));
    }
  }
  for (SpefNet& n : out.nets) n.total_cap *= out.cap_unit;
  return out;
}

}  // namespace

SpefFile read_spef(std::istream& is, const std::string& source) {
  IstreamLineSource src(is);
  return read_spef_lines(src, source);
}

SpefFile read_spef_file(const std::string& path) {
  LineReader src(path);
  if (!src.ok()) {
    throw std::runtime_error("read_spef_file: cannot open " + path);
  }
  return read_spef_lines(src, path);
}

common::Result<SpefFile> load_spef_file(const std::string& path) {
  // Chunked reader: SPEF is the largest artifact the tool touches, so the
  // parse streams it through a fixed buffer instead of materializing it.
  LineReader src(path);
  if (!src.ok()) {
    return common::Status::NotFound("cannot open SPEF file " + path);
  }
  try {
    return read_spef_lines(src, path);
  } catch (...) {
    return common::classify_exception(common::StatusCode::kIoError);
  }
}

}  // namespace sndr::io
