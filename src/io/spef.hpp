// SPEF (IEEE 1481) parasitics exchange.
//
// Writes the extracted clock-network parasitics as a standard SPEF file so
// downstream tools (or a signoff STA) can consume them, and reads SPEF back
// into per-net RC trees. The subset implemented is the structural core used
// by every extractor: header units, *D_NET sections with *CONN/*CAP/*RES.
// Coupling caps are emitted as grounded caps scaled by the power Miller
// factor convention used in the library (documented in the header comment
// of each file written).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "extract/extractor.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"

namespace sndr::io {

struct SpefWriteOptions {
  std::string program = "sndr";
  std::string version = "1.0";
  /// Coupling caps folded to ground with this factor (SPEF cc sections for
  /// true aggressor nets are not modeled — the aggressors are abstract).
  double miller_power = 1.0;
};

/// Writes the whole clock network. Net names are `clk_net_<id>`; internal
/// RC nodes are `clk_net_<id>:<rc_index>`; pins are `<inst>:<pin>` with
/// instances `src`, `buf_<tree_node>`, `sink_<design_sink>`.
void write_spef(std::ostream& os, const netlist::ClockTree& tree,
                const netlist::Design& design,
                const netlist::NetList& nets,
                const std::vector<extract::NetParasitics>& parasitics,
                const SpefWriteOptions& options = {});

/// Convenience: write to a file path. Throws std::runtime_error on I/O
/// failure.
void write_spef_file(const std::string& path, const netlist::ClockTree& tree,
                     const netlist::Design& design,
                     const netlist::NetList& nets,
                     const std::vector<extract::NetParasitics>& parasitics,
                     const SpefWriteOptions& options = {});

/// One parsed *D_NET section.
struct SpefNet {
  std::string name;
  double total_cap = 0.0;  ///< F, from the D_NET header.
  /// Node name -> grounded cap (F).
  std::vector<std::pair<std::string, double>> caps;
  /// (node a, node b, ohm) resistors.
  struct Res {
    std::string a;
    std::string b;
    double ohm = 0.0;
  };
  std::vector<Res> resistors;

  double cap_sum() const;
};

struct SpefFile {
  std::string design_name;
  double time_unit = 1e-12;  ///< s per SPEF time unit.
  double cap_unit = 1e-15;   ///< F per SPEF cap unit.
  double res_unit = 1.0;     ///< ohm per SPEF res unit.
  std::vector<SpefNet> nets;

  const SpefNet* find(const std::string& name) const;
};

/// Parses the subset written by write_spef. Throws common::ParseError with
/// a "<source>:<line>: message" diagnostic on malformed input.
SpefFile read_spef(std::istream& is, const std::string& source = "<stream>");
SpefFile read_spef_file(const std::string& path);

/// Error-boundary variant of read_spef_file: kNotFound when the file
/// cannot be opened, kParseError with a path:line diagnostic on malformed
/// input; never throws.
common::Result<SpefFile> load_spef_file(const std::string& path);

}  // namespace sndr::io
