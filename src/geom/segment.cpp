#include "geom/segment.hpp"

#include <ostream>

namespace sndr::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

double path_length(const Path& path) {
  double len = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    len += manhattan(path[i - 1], path[i]);
  }
  return len;
}

std::vector<Segment> path_segments(const Path& path) {
  std::vector<Segment> segs;
  if (path.size() < 2) return segs;
  segs.reserve(path.size());
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Point a = path[i - 1];
    const Point b = path[i];
    if (a == b) continue;
    const Segment s{a, b};
    if (s.axis_parallel()) {
      segs.push_back(s);
    } else {
      const Point corner{b.x, a.y};
      segs.push_back({a, corner});
      segs.push_back({corner, b});
    }
  }
  return segs;
}

Path l_path(Point a, Point b, bool horizontal_first) {
  if (a.x == b.x || a.y == b.y) return {a, b};
  const Point corner = horizontal_first ? Point{b.x, a.y} : Point{a.x, b.y};
  return {a, corner, b};
}

Point point_at(const Path& path, double dist) {
  if (path.empty()) return {};
  if (dist <= 0.0) return path.front();
  for (std::size_t i = 1; i < path.size(); ++i) {
    const double seg_len = manhattan(path[i - 1], path[i]);
    if (dist <= seg_len) {
      if (seg_len == 0.0) return path[i];
      return lerp(path[i - 1], path[i], dist / seg_len);
    }
    dist -= seg_len;
  }
  return path.back();
}

std::pair<Path, Path> split_at(const Path& path, double dist) {
  if (path.size() < 2) return {path, path};
  dist = std::max(0.0, std::min(dist, path_length(path)));
  Path head;
  head.push_back(path.front());
  std::size_t i = 1;
  double remaining = dist;
  for (; i < path.size(); ++i) {
    const double seg_len = manhattan(path[i - 1], path[i]);
    if (remaining <= seg_len) break;
    remaining -= seg_len;
    head.push_back(path[i]);
  }
  Point cut;
  if (i >= path.size()) {
    cut = path.back();
    i = path.size() - 1;
  } else {
    const double seg_len = manhattan(path[i - 1], path[i]);
    cut = seg_len == 0.0 ? path[i] : lerp(path[i - 1], path[i], remaining / seg_len);
  }
  if (!almost_equal(head.back(), cut)) head.push_back(cut);
  Path tail;
  tail.push_back(cut);
  for (std::size_t j = i; j < path.size(); ++j) {
    if (!almost_equal(tail.back(), path[j])) tail.push_back(path[j]);
  }
  if (tail.size() < 2) tail.push_back(cut);
  if (head.size() < 2) head.push_back(cut);
  return {head, tail};
}

Path reversed(const Path& path) { return Path(path.rbegin(), path.rend()); }

Path detour_path(Point a, Point b, double length, bool horizontal_first) {
  const Path base = l_path(a, b, horizontal_first);
  const double d = path_length(base);
  const double extra = length - d;
  if (extra <= 1e-9) return base;
  // Insert a U-jog of depth extra/2 at the path midpoint, perpendicular to
  // the segment the midpoint falls on.
  auto [head, tail] = split_at(base, d / 2.0);
  const Point m = head.back();
  // Direction of the segment containing the midpoint; jog perpendicular.
  const Point before = head.size() >= 2 ? head[head.size() - 2] : m;
  const bool on_horizontal = before.y == m.y && before.x != m.x;
  const double depth = extra / 2.0;
  const Point jog = on_horizontal ? Point{m.x, m.y + depth}
                                  : Point{m.x + depth, m.y};
  Path out = head;
  out.push_back(jog);
  out.push_back(m);  // out-and-back adds exactly 2*depth of wirelength.
  for (std::size_t i = 1; i < tail.size(); ++i) out.push_back(tail[i]);
  return out;
}

}  // namespace sndr::geom
