// Basic 2-D geometry primitives used throughout the clock-network tooling.
//
// Coordinates are in micrometers (um) and stored as doubles; all routing in
// this library is rectilinear (Manhattan), so the distance of record is the
// L1 metric.
#pragma once

#include <cmath>
#include <iosfwd>

namespace sndr::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
constexpr Point operator*(double s, Point a) { return a * s; }

/// L1 (Manhattan) distance between two points, in um.
inline double manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean distance, used only for reporting/diagnostics.
inline double euclidean(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Linear interpolation: t=0 -> a, t=1 -> b.
constexpr Point lerp(Point a, Point b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Midpoint of a and b.
constexpr Point midpoint(Point a, Point b) { return lerp(a, b, 0.5); }

/// True if the two points coincide within eps (um).
inline bool almost_equal(Point a, Point b, double eps = 1e-9) {
  return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps;
}

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace sndr::geom
