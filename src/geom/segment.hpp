// Axis-parallel wire segments and rectilinear polyline paths.
//
// Every routed wire in the library is a chain of axis-parallel segments; the
// router guarantees rectilinearity, and extraction/EM analysis consume the
// per-segment decomposition produced here.
#pragma once

#include <cmath>
#include <vector>

#include "geom/point.hpp"

namespace sndr::geom {

struct Segment {
  Point a;
  Point b;

  double length() const { return manhattan(a, b); }
  bool horizontal() const { return a.y == b.y; }
  bool vertical() const { return a.x == b.x; }
  bool axis_parallel() const { return horizontal() || vertical(); }
  bool degenerate() const { return a == b; }

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// A rectilinear polyline path through `pts` (>= 2 points when non-empty).
using Path = std::vector<Point>;

/// Total L1 length of a path in um.
double path_length(const Path& path);

/// Splits a path into its axis-parallel segments, dropping degenerate ones.
/// Diagonal links (which only a buggy router would produce) are decomposed
/// into an L: horizontal first, then vertical.
std::vector<Segment> path_segments(const Path& path);

/// Builds an L-shaped path from `a` to `b`. If `horizontal_first` the path
/// runs in x first, else in y first. Collinear endpoints yield a 2-point path.
Path l_path(Point a, Point b, bool horizontal_first);

/// Point at L1 arc-length `dist` from the start of the path (clamped to the
/// path ends). Used for slicing segments and placing buffers on wires.
Point point_at(const Path& path, double dist);

/// Splits a path at L1 arc-length `dist`; returns {head, tail}. Both halves
/// share the split point. `dist` is clamped to [0, length].
std::pair<Path, Path> split_at(const Path& path, double dist);

/// Reverses a path in place-order (returns b->a for an a->b path).
Path reversed(const Path& path);

/// Builds a rectilinear path from `a` to `b` whose total length is
/// `length` >= manhattan(a, b), by inserting a U-shaped jog at the midpoint
/// of the base L-path (wire snaking, used for delay balancing). The extra
/// length is split evenly between the two legs of the jog.
Path detour_path(Point a, Point b, double length, bool horizontal_first);

}  // namespace sndr::geom
