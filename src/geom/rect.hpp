// Axis-aligned bounding box in um coordinates.
#pragma once

#include <algorithm>
#include <limits>

#include "geom/point.hpp"

namespace sndr::geom {

class BBox {
 public:
  /// Constructs an empty (inverted) box; extend() makes it valid.
  BBox() = default;
  BBox(Point lo, Point hi) : lo_(lo), hi_(hi) {}
  BBox(double x0, double y0, double x1, double y1)
      : lo_{std::min(x0, x1), std::min(y0, y1)},
        hi_{std::max(x0, x1), std::max(y0, y1)} {}

  bool empty() const { return lo_.x > hi_.x || lo_.y > hi_.y; }

  Point lo() const { return lo_; }
  Point hi() const { return hi_; }
  double width() const { return empty() ? 0.0 : hi_.x - lo_.x; }
  double height() const { return empty() ? 0.0 : hi_.y - lo_.y; }
  double area() const { return width() * height(); }
  double half_perimeter() const { return width() + height(); }
  Point center() const { return midpoint(lo_, hi_); }

  void extend(Point p) {
    lo_.x = std::min(lo_.x, p.x);
    lo_.y = std::min(lo_.y, p.y);
    hi_.x = std::max(hi_.x, p.x);
    hi_.y = std::max(hi_.y, p.y);
  }

  void extend(const BBox& b) {
    if (b.empty()) return;
    extend(b.lo_);
    extend(b.hi_);
  }

  /// Inflates the box by d um on every side.
  void inflate(double d) {
    lo_.x -= d;
    lo_.y -= d;
    hi_.x += d;
    hi_.y += d;
  }

  bool contains(Point p) const {
    return !empty() && p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y &&
           p.y <= hi_.y;
  }

  bool intersects(const BBox& b) const {
    return !empty() && !b.empty() && lo_.x <= b.hi_.x && b.lo_.x <= hi_.x &&
           lo_.y <= b.hi_.y && b.lo_.y <= hi_.y;
  }

  /// Closest point inside the box to p (p itself if contained).
  Point clamp(Point p) const {
    return {std::clamp(p.x, lo_.x, hi_.x), std::clamp(p.y, lo_.y, hi_.y)};
  }

  friend bool operator==(const BBox&, const BBox&) = default;

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();
  Point lo_{kInf, kInf};
  Point hi_{-kInf, -kInf};
};

}  // namespace sndr::geom
