// Umbrella header: the public API of the smart non-default-routing library.
//
// Typical flow:
//
//   auto design = workload::make_design(spec);          // or your own
//   auto tech   = tech::Technology::make_default_45nm();
//   auto cts    = cts::synthesize(design, tech);
//   auto nets   = netlist::build_nets(cts.tree);
//   auto smart  = ndr::optimize_smart_ndr(cts.tree, design, tech, nets);
//   // smart.final_eval has power/skew/slew/EM/variation signoff numbers.
#pragma once

#include "ndr/annealer.hpp"     // IWYU pragma: export
#include "ndr/corner_eval.hpp"  // IWYU pragma: export
#include "ndr/evaluation.hpp"   // IWYU pragma: export
#include "ndr/linear_model.hpp" // IWYU pragma: export
#include "ndr/net_eval.hpp"     // IWYU pragma: export
#include "ndr/optimizer.hpp"    // IWYU pragma: export
#include "ndr/predictor.hpp"    // IWYU pragma: export
