#include "ndr/corner_eval.hpp"

namespace sndr::ndr {

namespace {

template <typename Metric>
int worst_index(const std::vector<CornerResult>& corners, Metric metric) {
  int worst = -1;
  double value = -1.0;
  for (int i = 0; i < static_cast<int>(corners.size()); ++i) {
    const double v = metric(corners[i].eval);
    if (v > value) {
      value = v;
      worst = i;
    }
  }
  return worst;
}

}  // namespace

int MultiCornerReport::worst_slew_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.timing.max_slew;
  });
}

int MultiCornerReport::worst_skew_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.timing.skew();
  });
}

int MultiCornerReport::worst_em_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.em.worst_density;
  });
}

int MultiCornerReport::worst_power_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.power.total_power;
  });
}

MultiCornerReport evaluate_corners(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const RuleAssignment& assignment,
    const std::vector<tech::Corner>& corners,
    const timing::AnalysisOptions& options) {
  MultiCornerReport rep;
  rep.corners.reserve(corners.size());
  for (const tech::Corner& corner : corners) {
    const tech::Technology cornered = tech::apply_corner(tech, corner);
    CornerResult r;
    r.corner = corner;
    r.eval = evaluate(tree, design, cornered, nets, assignment, options);
    rep.corners.push_back(std::move(r));
  }
  return rep;
}

}  // namespace sndr::ndr
