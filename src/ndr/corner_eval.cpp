#include "ndr/corner_eval.hpp"

#include <optional>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sndr::ndr {

namespace {

template <typename Metric>
int worst_index(const std::vector<CornerResult>& corners, Metric metric) {
  int worst = -1;
  double value = -1.0;
  for (int i = 0; i < static_cast<int>(corners.size()); ++i) {
    const double v = metric(corners[i].eval);
    if (v > value) {
      value = v;
      worst = i;
    }
  }
  return worst;
}

}  // namespace

int MultiCornerReport::worst_slew_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.timing.max_slew;
  });
}

int MultiCornerReport::worst_skew_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.timing.skew();
  });
}

int MultiCornerReport::worst_em_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.em.worst_density;
  });
}

int MultiCornerReport::worst_power_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.power.total_power;
  });
}

MultiCornerReport evaluate_corners(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const RuleAssignment& assignment,
    const std::vector<tech::Corner>& corners,
    const timing::AnalysisOptions& options,
    const extract::GeometryCache* geometry) {
  SNDR_TRACE_SPAN("evaluate_corners");
  SNDR_COUNTER_ADD("ndr.corner_signoffs", 1);
  SNDR_COUNTER_ADD("ndr.corners_evaluated",
                   static_cast<std::int64_t>(corners.size()));
  // Geometry is corner-invariant: derating touches electrical coefficients
  // only, never routed paths or congestion. Build the cache once (unless
  // the caller shares theirs) and every corner materializes from it.
  std::optional<extract::GeometryCache> local;
  if (geometry == nullptr) {
    local.emplace(tree, design, nets);
    geometry = &*local;
  }
  // One task per corner; each task clones the technology with its corner
  // folded in, so corners share nothing mutable (the geometry cache is
  // read-only here). Nested parallel loops inside evaluate() degrade to
  // serial on pool workers (see common/thread_pool.hpp), which is the right
  // shape here: corners are the coarsest independent unit of signoff work.
  MultiCornerReport rep;
  rep.corners.resize(corners.size());
  common::parallel_for(
      static_cast<std::int64_t>(corners.size()), /*grain=*/1,
      [&](std::int64_t i) {
        const tech::Corner& corner = corners[static_cast<std::size_t>(i)];
        const tech::Technology cornered = tech::apply_corner(tech, corner);
        rep.corners[i].corner = corner;
        rep.corners[i].eval = evaluate(tree, design, cornered, nets,
                                       assignment, options, geometry);
      });
  return rep;
}

}  // namespace sndr::ndr
