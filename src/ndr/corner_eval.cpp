#include "ndr/corner_eval.hpp"

#include <optional>

#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "extract/batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sndr::ndr {

namespace {

template <typename Metric>
int worst_index(const std::vector<CornerResult>& corners, Metric metric) {
  int worst = -1;
  double value = -1.0;
  for (int i = 0; i < static_cast<int>(corners.size()); ++i) {
    const double v = metric(corners[i].eval);
    if (v > value) {
      value = v;
      worst = i;
    }
  }
  return worst;
}

}  // namespace

int MultiCornerReport::worst_slew_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.timing.max_slew;
  });
}

int MultiCornerReport::worst_skew_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.timing.skew();
  });
}

int MultiCornerReport::worst_em_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.em.worst_density;
  });
}

int MultiCornerReport::worst_power_corner() const {
  return worst_index(corners, [](const FlowEvaluation& e) {
    return e.power.total_power;
  });
}

MultiCornerReport evaluate_corners(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const RuleAssignment& assignment,
    const std::vector<tech::Corner>& corners,
    const timing::AnalysisOptions& options,
    const extract::GeometryCache* geometry) {
  SNDR_TRACE_SPAN("evaluate_corners");
  SNDR_COUNTER_ADD("ndr.corner_signoffs", 1);
  SNDR_COUNTER_ADD("ndr.corners_evaluated",
                   static_cast<std::int64_t>(corners.size()));
  // Geometry is corner-invariant: derating touches electrical coefficients
  // only, never routed paths or congestion. Build the cache once (unless
  // the caller shares theirs) and every corner materializes from it.
  std::optional<extract::GeometryCache> local;
  if (geometry == nullptr) {
    local.emplace(tree, design, nets);
    geometry = &*local;
  }
  const int n_corners = static_cast<int>(corners.size());
  std::vector<tech::Technology> cornered;
  cornered.reserve(corners.size());
  for (const tech::Corner& corner : corners) {
    cornered.push_back(tech::apply_corner(tech, corner));
  }

  // Extraction is hoisted out of the per-corner evaluations: the derated
  // clones are just extra lanes of the batched materialize, so every net's
  // piece arrays are walked once TOTAL instead of once per corner, and
  // each lane is scattered into that corner's parasitics slot —
  // bit-identical to the extract_all each corner used to run (pinned by
  // tests/batch_kernel_test.cpp).
  std::vector<std::vector<extract::NetParasitics>> corner_par(
      static_cast<std::size_t>(n_corners));
  for (auto& p : corner_par) p.resize(static_cast<std::size_t>(nets.size()));
  SNDR_COUNTER_ADD("extract.corner_batch.nets",
                   static_cast<std::int64_t>(nets.size()));
  SNDR_COUNTER_ADD("extract.corner_batch.lanes",
                   static_cast<std::int64_t>(n_corners));
  common::parallel_for(nets.size(), /*grain=*/16,
                       /*est_us_per_item=*/1.0 * n_corners,
                       [&](std::int64_t i) {
    const netlist::Net& net = nets.nets[static_cast<std::size_t>(i)];
    thread_local common::Arena arena;
    arena.reset();
    extract::EvalLane* lanes =
        arena.alloc<extract::EvalLane>(static_cast<std::size_t>(n_corners));
    for (int c = 0; c < n_corners; ++c) {
      lanes[c] = {&cornered[c], &cornered[c].rules[assignment[net.id]]};
    }
    const extract::GeometryCache::Pinned pin = geometry->pinned(net.id);
    const extract::NetGeometry& geom = *pin;
    extract::BatchParasitics bp;
    extract::materialize_batch(geom, lanes, n_corners, arena, bp);
    for (int c = 0; c < n_corners; ++c) {
      extract::scatter_lane(geom, bp, c, corner_par[c][i]);
    }
  });

  // One task per corner for the rest of the signoff stack; corners share
  // nothing mutable. Nested parallel loops inside the evaluation degrade
  // to serial on pool workers (see common/thread_pool.hpp), which is the
  // right shape here: corners are the coarsest independent unit of work.
  MultiCornerReport rep;
  rep.corners.resize(corners.size());
  common::parallel_for(
      static_cast<std::int64_t>(corners.size()), /*grain=*/1,
      /*est_us_per_item=*/5000.0, [&](std::int64_t i) {
        rep.corners[i].corner = corners[static_cast<std::size_t>(i)];
        rep.corners[i].eval = evaluate_with_parasitics(
            tree, design, cornered[static_cast<std::size_t>(i)], nets,
            assignment, std::move(corner_par[static_cast<std::size_t>(i)]),
            options);
      });
  return rep;
}

}  // namespace sndr::ndr
