#include "ndr/linear_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sndr::ndr {

std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              int n) {
  // Cholesky: A = L L^T, stored in the lower triangle of `a`.
  for (int j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (int k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) {
      throw std::runtime_error("solve_spd: matrix not positive definite");
    }
    a[j * n + j] = std::sqrt(d);
    for (int i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (int k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / a[j * n + j];
    }
  }
  // Forward: L z = b.
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  // Backward: L^T x = z.
  for (int i = n - 1; i >= 0; --i) {
    double s = b[i];
    for (int k = i + 1; k < n; ++k) s -= a[k * n + i] * b[k];
    b[i] = s / a[i * n + i];
  }
  return b;
}

void RidgeRegression::fit(const std::vector<std::vector<double>>& X,
                          const std::vector<double>& y, double lambda) {
  if (X.empty() || X.size() != y.size()) {
    throw std::invalid_argument("RidgeRegression::fit: shape mismatch");
  }
  const int n = static_cast<int>(X.size());
  const int d = static_cast<int>(X[0].size());
  for (const auto& row : X) {
    if (static_cast<int>(row.size()) != d) {
      throw std::invalid_argument("RidgeRegression::fit: ragged rows");
    }
  }

  // Standardize features; center the target (intercept handled separately).
  mean_.assign(d, 0.0);
  scale_.assign(d, 0.0);
  for (const auto& row : X) {
    for (int j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (int j = 0; j < d; ++j) mean_[j] /= n;
  for (const auto& row : X) {
    for (int j = 0; j < d; ++j) {
      const double c = row[j] - mean_[j];
      scale_[j] += c * c;
    }
  }
  for (int j = 0; j < d; ++j) {
    scale_[j] = std::sqrt(scale_[j] / n);
    if (scale_[j] < 1e-30) scale_[j] = 1.0;  // constant feature.
  }
  const double y_mean =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);

  // Normal equations on standardized data: (Z^T Z + lambda I) w = Z^T yc.
  std::vector<double> a(static_cast<std::size_t>(d) * d, 0.0);
  std::vector<double> rhs(d, 0.0);
  std::vector<double> z(d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) z[j] = (X[i][j] - mean_[j]) / scale_[j];
    const double yc = y[i] - y_mean;
    for (int j = 0; j < d; ++j) {
      rhs[j] += z[j] * yc;
      for (int k = 0; k <= j; ++k) a[j * d + k] += z[j] * z[k];
    }
  }
  for (int j = 0; j < d; ++j) {
    for (int k = j + 1; k < d; ++k) a[j * d + k] = a[k * d + j];
    a[j * d + j] += lambda * n;
  }
  weights_ = solve_spd(std::move(a), std::move(rhs), d);
  intercept_ = y_mean;
}

double RidgeRegression::predict(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != dim()) {
    throw std::invalid_argument("RidgeRegression::predict: bad dimension");
  }
  double y = intercept_;
  for (int j = 0; j < dim(); ++j) {
    y += weights_[j] * (x[j] - mean_[j]) / scale_[j];
  }
  return y;
}

double mean_abs_error(const std::vector<double>& truth,
                      const std::vector<double>& pred) {
  if (truth.empty() || truth.size() != pred.size()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    s += std::abs(truth[i] - pred[i]);
  }
  return s / static_cast<double>(truth.size());
}

double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& pred) {
  if (truth.size() < 2 || truth.size() != pred.size()) return 0.0;
  const double mean =
      std::accumulate(truth.begin(), truth.end(), 0.0) /
      static_cast<double>(truth.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot < 1e-60) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

namespace {

std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<int> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](int a, int b) { return v[a] < v[b]; });
  std::vector<double> r(v.size(), 0.0);
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
    const double mean_rank = 0.5 * (i + j);  // average ranks for ties.
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = mean_rank;
    i = j + 1;
  }
  return r;
}

}  // namespace

double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.size() < 2 || a.size() != b.size()) return 0.0;
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  const double n = static_cast<double>(a.size());
  const double mean = (n - 1.0) / 2.0;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    va += (ra[i] - mean) * (ra[i] - mean);
    vb += (rb[i] - mean) * (rb[i] - mean);
  }
  if (va < 1e-30 || vb < 1e-30) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace sndr::ndr
