#include "ndr/optimizer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "ndr/assignment_state.hpp"
#include "obs/trace.hpp"
#include "route/congestion_route.hpp"
#include "timing/delay_metrics.hpp"

namespace sndr::ndr {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

class Optimizer {
 public:
  Optimizer(const netlist::ClockTree& tree, const netlist::Design& design,
            const tech::Technology& tech, const netlist::NetList& nets,
            const OptimizerOptions& opt)
      : tree_(tree),
        design_(design),
        tech_(tech),
        nets_(nets),
        opt_(opt),
        scoring_(opt.use_models ? opt.scoring : Scoring::kExactNet),
        margins_{opt.slew_margin, opt.uncertainty_margin, opt.em_margin,
                 opt.skew_margin},
        state_(tree, design, tech, nets, opt.analysis,
               opt.geometry_budget_bytes, opt.shared_geometry) {
    // Transplanted rows are adopted only where the per-net context guard
    // holds, so they are bitwise what a cold eval would compute here.
    if (opt_.memo_in != nullptr) state_.import_memo(*opt_.memo_in);
  }

  SmartNdrResult run();

 private:
  FlowEvaluation full_eval(const RuleAssignment& assignment) {
    ++stats_.full_evals;
    // Resyncs share the state's geometry cache: the tree and congestion
    // map never change during a run, only the rule assignment does.
    return evaluate(tree_, design_, tech_, nets_, assignment, opt_.analysis,
                    &state_.geometry_cache());
  }

  void resync(const RuleAssignment& assignment) {
    const FlowEvaluation ev = full_eval(assignment);
    state_.rebuild(assignment, ev);
  }

  /// Tries to move `net_id` to the cheapest feasible rule; returns true on
  /// a committed move.
  bool improve_net(int net_id);
  bool improve_net_full_sta(int net_id);

  void commit(int net_id, int rule_idx, const NetExact& exact);
  void repair(FlowEvaluation& ev);

  const netlist::ClockTree& tree_;
  const netlist::Design& design_;
  const tech::Technology& tech_;
  const netlist::NetList& nets_;
  OptimizerOptions opt_;
  Scoring scoring_;
  MoveMargins margins_;

  AssignmentState state_;
  RuleAssignment assignment_;  ///< mirror of state_.assignment().

  /// Trained here or handed in via opt_.shared_predictor (immutable either
  /// way — predict() is const and the serve layer shares one instance
  /// across concurrent jobs).
  std::shared_ptr<const RuleImpactPredictor> predictor_;
  bool predictor_ready_ = false;
  bool blanket_was_feasible_ = false;

  OptimizerStats stats_;
};

void Optimizer::commit(int net_id, int rule_idx, const NetExact& exact) {
  state_.apply_move(net_id, rule_idx, exact);
  assignment_[net_id] = rule_idx;
  ++stats_.commits;
  if (opt_.full_refresh_interval > 0 &&
      stats_.commits % opt_.full_refresh_interval == 0) {
    resync(assignment_);
  }
}

bool Optimizer::improve_net(int net_id) {
  if (scoring_ == Scoring::kFullSta) return improve_net_full_sta(net_id);
  const double cap_now = state_.net_cap(net_id);
  const NetSummary& summary = state_.summary(net_id);

  // Candidate rules, cheapest switched cap first, strictly cheaper only.
  std::vector<std::pair<double, int>> cands;
  for (int r = 0; r < tech_.rules.size(); ++r) {
    if (r == assignment_[net_id]) continue;
    const double cap = net_cap_under_rule(summary, tech_, tech_.rules[r]);
    if (cap < cap_now * (1.0 - 1e-9)) cands.emplace_back(cap, r);
  }
  std::sort(cands.begin(), cands.end());

  for (const auto& [cap_new, r] : cands) {
    ++stats_.candidates_scored;
    if (scoring_ == Scoring::kModels && predictor_ready_) {
      const NetImpact impact = predictor_->predict(summary, r);
      if (!state_.check_move(net_id, r, impact, margins_)) continue;
      // Validate the winning candidate with the exact per-net engines.
      const NetExact exact = state_.exact_eval(net_id, r);
      ++stats_.exact_net_evals;
      NetImpact verified;
      verified.step_slew = exact.step_slew_worst;
      verified.sigma = exact.sigma_worst;
      verified.xtalk = exact.xtalk_worst;
      verified.delay = exact.wire_delay_worst;
      if (exact.em_peak >
          tech_.clock_layer.em_jmax * (1.0 - margins_.em)) {
        continue;
      }
      if (!state_.check_move(net_id, r, verified, margins_)) continue;
      commit(net_id, r, exact);
    } else {
      // Exact scoring already is the validation: evaluate once and reuse
      // the result for both the feasibility check and the commit.
      const NetExact exact = state_.exact_eval(net_id, r);
      ++stats_.exact_net_evals;
      NetImpact impact;
      impact.step_slew = exact.step_slew_worst;
      impact.sigma = exact.sigma_worst;
      impact.xtalk = exact.xtalk_worst;
      impact.delay = exact.wire_delay_worst;
      if (exact.em_peak >
          tech_.clock_layer.em_jmax * (1.0 - margins_.em)) {
        continue;
      }
      if (!state_.check_move(net_id, r, impact, margins_)) continue;
      commit(net_id, r, exact);
    }
    return true;
  }
  return false;
}

bool Optimizer::improve_net_full_sta(int net_id) {
  // The naive flow: every candidate is judged by a complete extraction +
  // timing + variation + EM run of the whole tree. Kept for the runtime
  // comparison (Fig. 7); unusably slow beyond a few thousand nets.
  const NetSummary& summary = state_.summary(net_id);
  std::vector<std::pair<double, int>> cands;
  for (int r = 0; r < tech_.rules.size(); ++r) {
    if (r == assignment_[net_id]) continue;
    const double cap = net_cap_under_rule(summary, tech_, tech_.rules[r]);
    if (cap < state_.net_cap(net_id) * (1.0 - 1e-9)) {
      cands.emplace_back(cap, r);
    }
  }
  std::sort(cands.begin(), cands.end());
  const int old_rule = assignment_[net_id];
  for (const auto& [cap_new, r] : cands) {
    ++stats_.candidates_scored;
    assignment_[net_id] = r;
    const FlowEvaluation ev = full_eval(assignment_);
    if (ev.feasible()) {
      state_.rebuild(assignment_, ev);
      ++stats_.commits;
      return true;
    }
    assignment_[net_id] = old_rule;
  }
  return false;
}

void Optimizer::repair(FlowEvaluation& ev) {
  const netlist::ClockConstraints& c = design_.constraints;
  for (int round = 0; round < opt_.max_repair_rounds; ++round) {
    if (ev.feasible()) return;
    opt_.cancel.check();
    bool changed = false;
    const int blanket = tech_.rules.blanket_index();

    // Routing overflow: move nets that cross overflowing cells to the
    // narrowest-pitch rule that still holds their local constraints. This
    // is the one repair direction that *reduces* wire footprint.
    if (ev.overflow_cells > 0 && design_.congestion.valid()) {
      const netlist::RoutingUsage usage = route::compute_usage(
          tree_, nets_, assignment_, tech_, design_.congestion);
      std::vector<char> cell_over(design_.congestion.cell_count(), 0);
      for (int ci = 0; ci < design_.congestion.cell_count(); ++ci) {
        cell_over[ci] =
            usage.used_cell(ci) > design_.congestion.capacity_cell(ci);
      }
      const double width_frac = tech_.clock_layer.width_frac();
      for (const netlist::Net& net : nets_.nets) {
        bool crosses = false;
        for (const geom::Path& p : state_.net_paths(net.id)) {
          design_.congestion.for_each_cell(p, [&](int ci, double) {
            if (cell_over[ci]) crosses = true;
          });
          if (crosses) break;
        }
        if (!crosses) continue;
        int best = assignment_[net.id];
        double best_pitch = tech_.rules[best].pitch_mult(width_frac);
        for (int r = 0; r < tech_.rules.size(); ++r) {
          const double pitch = tech_.rules[r].pitch_mult(width_frac);
          if (pitch + 1e-12 >= best_pitch) continue;
          const NetExact exact = state_.exact_eval(net.id, r);
          ++stats_.exact_net_evals;
          const double slew =
              state_.slew_at_loads(net.id, exact.step_slew_worst);
          if (slew > c.max_slew ||
              exact.em_peak > tech_.clock_layer.em_jmax) {
            continue;
          }
          best = r;
          best_pitch = pitch;
        }
        if (best != assignment_[net.id]) {
          assignment_[net.id] = best;
          changed = true;
          ++stats_.repair_upgrades;
        }
      }
      if (changed) {
        ev = full_eval(assignment_);
        state_.rebuild(assignment_, ev);
        continue;  // re-assess all constraint classes on fresh numbers.
      }
    }

    // Slew / EM violations: push the offending nets back to the blanket
    // rule (or the widest rule if blanket already).
    for (const netlist::Net& net : nets_.nets) {
      const bool slew_bad = ev.timing.net_max_load_slew[net.id] > c.max_slew;
      const bool em_bad = ev.em.net_slack[net.id] < 0.0;
      if (!slew_bad && !em_bad) continue;
      const int target = assignment_[net.id] == blanket
                             ? tech_.rules.size() - 1
                             : blanket;
      if (target != assignment_[net.id]) {
        assignment_[net.id] = target;
        changed = true;
        ++stats_.repair_upgrades;
      }
    }
    // Skew/window or uncertainty violations: revert every net on an
    // offending sink's path to the blanket rule.
    const double mean = std::accumulate(ev.timing.sink_arrival.begin(),
                                        ev.timing.sink_arrival.end(), 0.0) /
                        std::max<std::size_t>(1, design_.sinks.size());
    for (int s = 0; s < static_cast<int>(design_.sinks.size()); ++s) {
      const double off = ev.timing.sink_arrival[s] - mean;
      bool skew_bad = false;
      if (design_.useful_skew.enabled()) {
        skew_bad = ev.window_violations > 0 &&
                   (off < design_.useful_skew.lo[s] ||
                    off > design_.useful_skew.hi[s]);
      } else {
        skew_bad = !ev.skew_ok && std::abs(off) > 0.5 * c.max_skew;
      }
      const bool unc_bad =
          ev.variation.sink_uncertainty[s] > c.max_uncertainty;
      if (!skew_bad && !unc_bad) continue;
      for (const int net : state_.nets_on_path(s)) {
        if (assignment_[net] != blanket) {
          assignment_[net] = blanket;
          changed = true;
          ++stats_.repair_upgrades;
        }
      }
    }
    // Inter-clock (domain-pair) violations: the spread is set by the
    // extreme sinks of the pair, so revert both extreme paths to the
    // blanket rule — the same lever the intra-domain skew repair uses.
    for (const report::InterClockPair& p : ev.inter_clock.pairs) {
      if (p.ok) continue;
      for (const int s : {p.sink_early, p.sink_late}) {
        if (s < 0) continue;
        for (const int net : state_.nets_on_path(s)) {
          if (assignment_[net] != blanket) {
            assignment_[net] = blanket;
            changed = true;
            ++stats_.repair_upgrades;
          }
        }
      }
    }
    if (!changed) break;  // nothing more we can do incrementally.
    ev = full_eval(assignment_);
    state_.rebuild(assignment_, ev);
  }
  // Last resort: the conventional blanket assignment is a known-good point;
  // if it was feasible and incremental repair failed, fall back to it so the
  // result is never worse than the baseline practice.
  if (!ev.feasible() && blanket_was_feasible_) {
    assignment_ = assign_all(nets_, tech_.rules.blanket_index());
    ev = full_eval(assignment_);
    state_.rebuild(assignment_, ev);
    stats_.repair_upgrades += nets_.size();
  }
}

SmartNdrResult Optimizer::run() {
  SNDR_TRACE_SPAN("optimize_smart_ndr");
  // Bind the token to this thread so the parallel primitives inside the
  // evaluation engines inherit it without signature changes.
  common::CancelBinding cancel_binding(opt_.cancel);
  if (opt_.threads >= 0) common::set_thread_count(opt_.threads);
  stats_.threads_used = common::thread_count();
  SNDR_GAUGE_SET("optimizer.threads",
                 static_cast<double>(stats_.threads_used));
  if (!opt_.initial_assignment.empty()) {
    if (opt_.initial_assignment.size() !=
        static_cast<std::size_t>(nets_.size())) {
      throw std::invalid_argument(
          "optimize_smart_ndr: initial_assignment size mismatch");
    }
    assignment_ = opt_.initial_assignment;
  } else {
    assignment_ = assign_all(nets_, tech_.rules.blanket_index());
  }

  FlowEvaluation ev = full_eval(assignment_);
  state_.rebuild(assignment_, ev);
  blanket_was_feasible_ = ev.feasible();
  if (!ev.feasible()) {
    // The conventional starting point itself violates (e.g. EM at high
    // frequency wants 3W on trunks): repair first.
    repair(ev);
  }

  if (scoring_ == Scoring::kModels) {
    opt_.cancel.check();
    if (opt_.shared_predictor) {
      // Training is deterministic in its inputs, so a cached predictor
      // scores — and therefore assigns — bitwise identically to one
      // trained fresh here; train_seconds stays 0 to make the skip visible.
      predictor_ = opt_.shared_predictor;
    } else {
      const auto t0 = Clock::now();
      predictor_ = std::make_shared<const RuleImpactPredictor>(
          RuleImpactPredictor::train(tree_, design_, tech_, nets_,
                                     opt_.analysis, opt_.training_samples,
                                     /*holdout_frac=*/0.2,
                                     &state_.geometry_cache()));
      stats_.train_seconds = seconds_since(t0);
    }
    predictor_ready_ = true;
  }

  // Sweep order: leaf-first (deepest nets carry most of the wirelength and
  // have the most slack; freeing their capacity first also unblocks
  // upgrades). In ECO mode only the focus set is revisited.
  std::vector<int> sweep;
  if (opt_.focus_nets.empty()) {
    sweep.resize(nets_.size());
    for (int i = 0; i < nets_.size(); ++i) sweep[i] = nets_.size() - 1 - i;
  } else {
    sweep = opt_.focus_nets;
    std::sort(sweep.begin(), sweep.end(), std::greater<int>());
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
    for (const int id : sweep) {
      if (id < 0 || id >= nets_.size()) {
        throw std::invalid_argument(
            "optimize_smart_ndr: focus_nets id out of range");
      }
    }
  }

  // Exact scoring evaluates whole memo rows net by net as the sweep walks
  // them; prefetching the sweep's rows with cross-net shape-bucketed
  // batches does the same work with full SIMD lanes. Cached values are
  // bitwise identical either way, so the sweep's decisions are unchanged.
  if (scoring_ == Scoring::kExactNet) state_.warm_rows(sweep);

  const auto t1 = Clock::now();
  {
    SNDR_TRACE_SPAN("greedy_sweeps");
    for (int pass = 0; pass < opt_.max_passes; ++pass) {
      opt_.cancel.check();
      ++stats_.passes;
      int commits = 0;
      for (const int id : sweep) {
        opt_.cancel.check();
        if (improve_net(id)) ++commits;
      }
      if (commits == 0) break;
    }
  }
  stats_.optimize_seconds = seconds_since(t1);

  ev = full_eval(assignment_);
  if (!ev.feasible()) {
    state_.rebuild(assignment_, ev);
    repair(ev);
  }

  stats_.exact_cache_hits = state_.exact_cache_hits();
  stats_.exact_cache_misses = state_.exact_cache_misses();
  state_.flush_metrics();
  if (opt_.memo_out != nullptr) state_.export_memo(*opt_.memo_out);
  SNDR_COUNTER_ADD("optimizer.commits", stats_.commits);
  SNDR_COUNTER_ADD("optimizer.candidates_scored", stats_.candidates_scored);
  SNDR_COUNTER_ADD("optimizer.exact_net_evals", stats_.exact_net_evals);
  SNDR_COUNTER_ADD("optimizer.full_evals", stats_.full_evals);
  SNDR_COUNTER_ADD("optimizer.repair_upgrades", stats_.repair_upgrades);
  SNDR_COUNTER_ADD("optimizer.passes", stats_.passes);

  SmartNdrResult result;
  result.assignment = assignment_;
  result.final_eval = std::move(ev);
  result.stats = stats_;
  if (predictor_ready_) {
    result.train_report = predictor_->report();
    result.trained_predictor = predictor_;
  }
  result.rule_histogram.assign(tech_.rules.size(), 0);
  for (const int r : assignment_) ++result.rule_histogram[r];
  return result;
}

}  // namespace

SmartNdrResult optimize_smart_ndr(const netlist::ClockTree& tree,
                                  const netlist::Design& design,
                                  const tech::Technology& tech,
                                  const netlist::NetList& nets,
                                  const OptimizerOptions& options) {
  Optimizer opt(tree, design, tech, nets, options);
  return opt.run();
}

}  // namespace sndr::ndr
