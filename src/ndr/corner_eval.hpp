// Multi-corner signoff of a rule assignment.
//
// Evaluates the same tree + assignment at each process corner and reports
// the binding corner per constraint. This extends the paper's single-corner
// evaluation with the signoff practice its flow would face in production:
// a rule assignment is only acceptable if it holds at *every* corner.
#pragma once

#include "ndr/evaluation.hpp"
#include "tech/corners.hpp"

namespace sndr::ndr {

struct CornerResult {
  tech::Corner corner;
  FlowEvaluation eval;
};

struct MultiCornerReport {
  std::vector<CornerResult> corners;

  /// True if every corner passes every constraint.
  bool feasible() const {
    for (const CornerResult& c : corners) {
      if (!c.eval.feasible()) return false;
    }
    return true;
  }

  /// Index of the corner with the worst value of each signoff metric.
  int worst_slew_corner() const;
  int worst_skew_corner() const;
  int worst_em_corner() const;
  int worst_power_corner() const;
};

/// Runs evaluate() once per corner (buffer sizing and routing are fixed;
/// only the electrical coefficients move). Net geometry is corner-invariant
/// — corner derating scales electrical coefficients only — so a single
/// GeometryCache serves every derated technology clone: pass one in to
/// reuse it, or leave `geometry` null and one is built here and shared
/// across the corners.
MultiCornerReport evaluate_corners(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const RuleAssignment& assignment,
    const std::vector<tech::Corner>& corners = tech::standard_corners(),
    const timing::AnalysisOptions& options = {},
    const extract::GeometryCache* geometry = nullptr);

}  // namespace sndr::ndr
