#include "ndr/net_eval.hpp"

#include <algorithm>

#include "power/em.hpp"
#include "timing/delay_metrics.hpp"

namespace sndr::ndr {

NetSummary summarize_net(const netlist::ClockTree& tree,
                         const netlist::Design& design,
                         const tech::Technology& tech,
                         const netlist::Net& net,
                         const timing::AnalysisOptions& options) {
  NetSummary s;
  s.depth = net.depth;
  s.driver_res = timing::net_driver_res(tree, tech, net, options);
  s.load_count = static_cast<int>(net.loads.size());

  // Per-node path length from the driver, along the tree.
  std::vector<double> dist(tree.size(), 0.0);
  geom::Path fallback(2);  // reused buffer for pathless (direct) wires.
  for (const int v : net.wires) {
    const netlist::TreeNode& n = tree.node(v);
    const double len = tree.edge_length(v);
    dist[v] = dist[n.parent] + len;  // driver's dist is 0.
    s.wirelength += len;
    const geom::Path* path = &n.path;
    if (n.path.size() < 2) {
      fallback[0] = tree.loc(n.parent);
      fallback[1] = n.loc;
      path = &fallback;
    }
    s.occ_length += design.congestion.valid()
                        ? design.congestion.avg_occupancy(*path) * len
                        : 0.0;
  }
  for (const int load : net.loads) {
    s.max_path = std::max(s.max_path, dist[load]);
    s.load_cap += extract::load_pin_cap(tree, design, tech, load);
  }
  return s;
}

double net_cap_under_rule(const NetSummary& s, const tech::Technology& tech,
                          const tech::RoutingRule& rule) {
  const tech::MetalLayer& layer = tech.clock_layer;
  const double cgnd = tech::wire_cap_gnd_per_um(layer, rule) * s.wirelength;
  const double ccpl =
      2.0 * tech::wire_cap_couple_per_um(layer, rule) * s.occ_length;
  return cgnd + tech.miller_power * ccpl + s.load_cap;
}

double net_em_bound(const NetSummary& s, const tech::Technology& tech,
                    const tech::RoutingRule& rule, double freq) {
  const double width = tech.clock_layer.min_width * rule.width_mult;
  const double cap = net_cap_under_rule(s, tech, rule);
  return tech.em_crest_factor * freq * tech.vdd * cap / width;
}

NetExact evaluate_net_exact(const extract::NetGeometry& geom,
                            const tech::Technology& tech,
                            const tech::RoutingRule& rule, double driver_res,
                            double freq, NetEvalScratch& scratch) {
  NetExact out;
  extract::materialize(geom, tech, rule, scratch.par);
  const extract::NetParasitics& par = scratch.par;
  out.cap_switched = par.switched_cap(tech.miller_power);

  scratch.down_power.resize(static_cast<std::size_t>(par.rc.size()));
  extract::rc_downstream(par.rc.data(), par.rc.size(), tech.miller_power,
                         scratch.down_power.data());
  out.em_peak = power::net_peak_current_density(
      par, scratch.down_power.data(), tech, rule, freq);

  par.rc.moments(driver_res, 1.0, scratch.moments);
  const std::vector<double>& m1 = scratch.moments.m1;
  const std::vector<double>& m2 = scratch.moments.m2;
  double delay_sum = 0.0;
  for (const int rc : par.load_rc_index) {
    out.step_slew_worst =
        std::max(out.step_slew_worst, timing::step_slew(m1[rc], m2[rc]));
    const double d = timing::delay_d2m(m1[rc], m2[rc]);
    delay_sum += d;
    out.wire_delay_worst = std::max(out.wire_delay_worst, d);
  }
  out.wire_delay_mean =
      par.load_rc_index.empty()
          ? 0.0
          : delay_sum / static_cast<double>(par.load_rc_index.size());

  timing::net_variation(par, tech, rule, driver_res, scratch.variation,
                        scratch.detail);
  out.sigma_worst = scratch.detail.worst_sigma();
  out.xtalk_worst = scratch.detail.worst_xtalk();
  return out;
}

NetExact evaluate_net_exact(const netlist::ClockTree& tree,
                            const netlist::Design& design,
                            const tech::Technology& tech,
                            const netlist::Net& net,
                            const tech::RoutingRule& rule, double driver_res,
                            double freq) {
  // Fresh evaluation = geometry walk + the shared scratch-based kernels, so
  // cached (GeometryCache) and fresh results agree bit for bit.
  const extract::NetGeometry geom =
      extract::build_net_geometry(tree, design, net);
  NetEvalScratch scratch;
  NetExact out = evaluate_net_exact(geom, tech, rule, driver_res, freq,
                                    scratch);
  out.par = std::move(scratch.par);
  return out;
}

}  // namespace sndr::ndr
