#include "ndr/net_eval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "power/em.hpp"
#include "timing/delay_metrics.hpp"

namespace sndr::ndr {

NetSummary summarize_net(const netlist::ClockTree& tree,
                         const netlist::Design& design,
                         const tech::Technology& tech,
                         const netlist::Net& net,
                         const timing::AnalysisOptions& options) {
  NetSummary s;
  s.depth = net.depth;
  s.driver_res = timing::net_driver_res(tree, tech, net, options);
  s.load_count = static_cast<int>(net.loads.size());

  // Per-node path length from the driver, along the tree.
  std::vector<double> dist(tree.size(), 0.0);
  geom::Path fallback(2);  // reused buffer for pathless (direct) wires.
  for (const int v : net.wires) {
    const netlist::TreeNode& n = tree.node(v);
    const double len = tree.edge_length(v);
    dist[v] = dist[n.parent] + len;  // driver's dist is 0.
    s.wirelength += len;
    const geom::Path* path = &n.path;
    if (n.path.size() < 2) {
      fallback[0] = tree.loc(n.parent);
      fallback[1] = n.loc;
      path = &fallback;
    }
    s.occ_length += design.congestion.valid()
                        ? design.congestion.avg_occupancy(*path) * len
                        : 0.0;
  }
  for (const int load : net.loads) {
    s.max_path = std::max(s.max_path, dist[load]);
    s.load_cap += extract::load_pin_cap(tree, design, tech, load);
  }
  return s;
}

double net_cap_under_rule(const NetSummary& s, const tech::Technology& tech,
                          const tech::RoutingRule& rule) {
  const tech::MetalLayer& layer = tech.clock_layer;
  const double cgnd = tech::wire_cap_gnd_per_um(layer, rule) * s.wirelength;
  const double ccpl =
      2.0 * tech::wire_cap_couple_per_um(layer, rule) * s.occ_length;
  return cgnd + tech.miller_power * ccpl + s.load_cap;
}

double net_em_bound(const NetSummary& s, const tech::Technology& tech,
                    const tech::RoutingRule& rule, double freq) {
  const double width = tech.clock_layer.min_width * rule.width_mult;
  const double cap = net_cap_under_rule(s, tech, rule);
  return tech.em_crest_factor * freq * tech.vdd * cap / width;
}

NetExact evaluate_net_exact(const extract::NetGeometry& geom,
                            const tech::Technology& tech,
                            const tech::RoutingRule& rule, double driver_res,
                            double freq, NetEvalScratch& scratch) {
  NetExact out;
  extract::materialize(geom, tech, rule, scratch.par);
  const extract::NetParasitics& par = scratch.par;
  out.cap_switched = par.switched_cap(tech.miller_power);

  scratch.down_power.resize(static_cast<std::size_t>(par.rc.size()));
  extract::rc_downstream(par.rc.data(), par.rc.size(), tech.miller_power,
                         scratch.down_power.data());
  out.em_peak = power::net_peak_current_density(
      par, scratch.down_power.data(), tech, rule, freq);

  par.rc.moments(driver_res, 1.0, scratch.moments);
  const std::vector<double>& m1 = scratch.moments.m1;
  const std::vector<double>& m2 = scratch.moments.m2;
  double delay_sum = 0.0;
  for (const int rc : par.load_rc_index) {
    out.step_slew_worst =
        std::max(out.step_slew_worst, timing::step_slew(m1[rc], m2[rc]));
    const double d = timing::delay_d2m(m1[rc], m2[rc]);
    delay_sum += d;
    out.wire_delay_worst = std::max(out.wire_delay_worst, d);
  }
  out.wire_delay_mean =
      par.load_rc_index.empty()
          ? 0.0
          : delay_sum / static_cast<double>(par.load_rc_index.size());

  timing::net_variation(par, tech, rule, driver_res, scratch.variation,
                        scratch.detail);
  out.sigma_worst = scratch.detail.worst_sigma();
  out.xtalk_worst = scratch.detail.worst_xtalk();
  return out;
}

void evaluate_net_exact_batch(const extract::NetGeometry& geom,
                              const extract::EvalLane* lanes, int n_lanes,
                              const double* driver_res, double freq,
                              common::Arena& arena, NetExact* out) {
  const int L = n_lanes;
  extract::BatchParasitics bp;
  extract::materialize_batch(geom, lanes, L, arena, bp);
  const int n = bp.nodes;
  const std::int64_t plane = static_cast<std::int64_t>(n) * L;
  const int n_loads = static_cast<int>(geom.loads.size());

  // Per-lane technology constants, hoisted exactly as the scalar kernels
  // hoist them (same values, so same per-lane arithmetic).
  double* miller_one = arena.alloc<double>(L);
  double* miller_power = arena.alloc<double>(L);
  double* miller_delay = arena.alloc<double>(L);
  double* em_fv = arena.alloc<double>(L);     ///< freq * vdd.
  double* em_crest = arena.alloc<double>(L);
  double* width = arena.alloc<double>(L);
  double* w_factor = arena.alloc<double>(L);  ///< width / (width + d_w).
  double* w_coef = arena.alloc<double>(L);    ///< c_area * d_w.
  double* t_scale = arena.alloc<double>(L);   ///< 1 + d_t.
  double* activity = arena.alloc<double>(L);
  for (int l = 0; l < L; ++l) {
    const tech::Technology& tech = *lanes[l].tech;
    const tech::MetalLayer& layer = tech.clock_layer;
    miller_one[l] = 1.0;
    miller_power[l] = tech.miller_power;
    miller_delay[l] = tech.miller_delay;
    em_fv[l] = freq * tech.vdd;
    em_crest[l] = tech.em_crest_factor;
    width[l] = layer.min_width * lanes[l].rule->width_mult;
    w_factor[l] = width[l] / (width[l] + layer.sigma_width);
    w_coef[l] = layer.c_area * layer.sigma_width;
    t_scale[l] = 1.0 + layer.sigma_thickness;
    activity[l] = tech.aggressor_activity;

    out[l] = NetExact{};
    out[l].cap_switched = bp.wire_cap_gnd[l] + bp.load_cap[l] +
                          miller_power[l] * bp.wire_cap_cpl[l];
  }

  // EM: downstream sweep at the power Miller factor, then the worst
  // piece-current scan in node order (the scalar net_peak_current_density
  // loop, lanes innermost).
  double* __restrict__ down_power = arena.alloc<double>(plane);
  extract::rc_downstream_batch(n, L, bp.parent, bp.cap_gnd, bp.cap_cpl,
                               miller_power, down_power);
  for (int i = 0; i < n; ++i) {
    if (bp.wire_len[i] <= 0.0) continue;
    const std::int64_t row = static_cast<std::int64_t>(i) * L;
    for (int l = 0; l < L; ++l) {
      const double i_avg = em_fv[l] * down_power[row + l];
      const double i_rms = em_crest[l] * i_avg;
      out[l].em_peak = std::max(out[l].em_peak, i_rms / width[l]);
    }
  }

  // Fused moments at miller = 1.0, then the per-load slew/delay scan.
  double* __restrict__ down = arena.alloc<double>(plane);
  double* __restrict__ subtree = arena.alloc<double>(plane);
  double* __restrict__ m1 = arena.alloc<double>(plane);
  double* __restrict__ m2 = arena.alloc<double>(plane);
  extract::rc_moments_batch(n, L, bp.parent, bp.res, bp.cap_gnd, bp.cap_cpl,
                            driver_res, miller_one, down, subtree, m1, m2);
  double* delay_sum = arena.alloc_zeroed<double>(L);
  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(geom.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) {
      out[l].step_slew_worst = std::max(
          out[l].step_slew_worst, timing::step_slew(m1[row + l], m2[row + l]));
      const double d = timing::delay_d2m(m1[row + l], m2[row + l]);
      delay_sum[l] += d;
      out[l].wire_delay_worst = std::max(out[l].wire_delay_worst, d);
    }
  }
  for (int l = 0; l < L; ++l) {
    out[l].wire_delay_mean =
        n_loads == 0 ? 0.0 : delay_sum[l] / static_cast<double>(n_loads);
  }

  // Variation: the nominal (base) Elmore at miller 1.0 is bitwise equal to
  // the m1 plane of the fused moment kernel (identical recurrence — see
  // rc_tree.hpp), so the three remaining solves reuse two perturbation
  // planes and one Elmore output pair.
  double* __restrict__ pert_res = arena.alloc<double>(plane);
  double* __restrict__ pert_cap = arena.alloc<double>(plane);
  double* __restrict__ pdown = arena.alloc<double>(plane);
  double* __restrict__ pm1 = arena.alloc<double>(plane);
  const double* __restrict__ b_res = bp.res;
  const double* __restrict__ b_cgnd = bp.cap_gnd;
  const double* __restrict__ b_ccpl = bp.cap_cpl;
  double* w_pert = arena.alloc<double>(static_cast<std::int64_t>(n_loads) * L);
  double* t_pert = arena.alloc<double>(static_cast<std::int64_t>(n_loads) * L);
  double* x_pert = arena.alloc<double>(static_cast<std::int64_t>(n_loads) * L);

  // Width +1 sigma: R scales W/(W+dW); area cap grows by c_area*dW per um.
  for (int i = 0; i < n; ++i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * L;
    const double wl = bp.wire_len[i];
    if (wl <= 0.0) {
      for (int l = 0; l < L; ++l) {
        pert_res[row + l] = b_res[row + l];
        pert_cap[row + l] = b_cgnd[row + l];
      }
    } else {
      for (int l = 0; l < L; ++l) {
        pert_res[row + l] = b_res[row + l] * w_factor[l];
        pert_cap[row + l] = b_cgnd[row + l] + w_coef[l] * wl;
      }
    }
  }
  extract::rc_elmore_batch(n, L, bp.parent, pert_res, pert_cap, bp.cap_cpl,
                           driver_res, miller_one, pdown, pm1);
  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(geom.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) w_pert[li * L + l] = pm1[row + l];
  }

  // Thickness +1 sigma: R scales 1/(1+dT) (kept as a per-node division,
  // like the scalar path); coupling scales (1+dT).
  for (int i = 0; i < n; ++i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * L;
    if (bp.wire_len[i] <= 0.0) {
      for (int l = 0; l < L; ++l) {
        pert_res[row + l] = b_res[row + l];
        pert_cap[row + l] = b_ccpl[row + l];
      }
    } else {
      for (int l = 0; l < L; ++l) {
        pert_res[row + l] = b_res[row + l] / t_scale[l];
        pert_cap[row + l] = b_ccpl[row + l] * t_scale[l];
      }
    }
  }
  extract::rc_elmore_batch(n, L, bp.parent, pert_res, bp.cap_gnd, pert_cap,
                           driver_res, miller_one, pdown, pm1);
  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(geom.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) t_pert[li * L + l] = pm1[row + l];
  }

  // Crosstalk: nominal planes at the delay Miller factor.
  extract::rc_elmore_batch(n, L, bp.parent, bp.res, bp.cap_gnd, bp.cap_cpl,
                           driver_res, miller_delay, pdown, pm1);
  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(geom.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) x_pert[li * L + l] = pm1[row + l];
  }

  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(geom.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) {
      const double base = m1[row + l];
      const double dw = w_pert[li * L + l] - base;
      const double dt = t_pert[li * L + l] - base;
      out[l].sigma_worst =
          std::max(out[l].sigma_worst, std::sqrt(dw * dw + dt * dt));
      out[l].xtalk_worst =
          std::max(out[l].xtalk_worst,
                   activity[l] * std::max(0.0, x_pert[li * L + l] - base));
    }
  }
}

void evaluate_net_exact_all_rules(const extract::NetGeometry& geom,
                                  const tech::Technology& tech,
                                  double driver_res, double freq,
                                  common::Arena& arena, NetExact* out) {
  arena.reset();
  const int L = tech.rules.size();
  extract::EvalLane* lanes =
      arena.alloc<extract::EvalLane>(static_cast<std::size_t>(L));
  double* dres = arena.alloc<double>(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    lanes[l] = {&tech, &tech.rules[l]};
    dres[l] = driver_res;
  }
  evaluate_net_exact_batch(geom, lanes, L, dres, freq, arena, out);
  common::note_arena_highwater(arena);
}

void evaluate_nets_exact_batch(const extract::NetLane* lanes, int n_lanes,
                               const double* driver_res, double freq,
                               common::Arena& arena, NetExact* out) {
  const int L = n_lanes;
  extract::BatchParasitics bp;
  extract::materialize_nets_batch(lanes, L, arena, bp);
  const int n = bp.nodes;
  const std::int64_t plane = static_cast<std::int64_t>(n) * L;
  // Load attach indices are part of the shared shape; counts/rows come from
  // lane 0, per-lane caps already landed in the planes.
  const extract::NetGeometry& shape = *lanes[0].geom;
  const int n_loads = static_cast<int>(shape.loads.size());
  const double* __restrict__ wl_lane = bp.wire_len_lane;

  double* miller_one = arena.alloc<double>(L);
  double* miller_power = arena.alloc<double>(L);
  double* miller_delay = arena.alloc<double>(L);
  double* em_fv = arena.alloc<double>(L);
  double* em_crest = arena.alloc<double>(L);
  double* width = arena.alloc<double>(L);
  double* w_factor = arena.alloc<double>(L);
  double* w_coef = arena.alloc<double>(L);
  double* t_scale = arena.alloc<double>(L);
  double* activity = arena.alloc<double>(L);
  for (int l = 0; l < L; ++l) {
    const tech::Technology& tech = *lanes[l].tech;
    const tech::MetalLayer& layer = tech.clock_layer;
    miller_one[l] = 1.0;
    miller_power[l] = tech.miller_power;
    miller_delay[l] = tech.miller_delay;
    em_fv[l] = freq * tech.vdd;
    em_crest[l] = tech.em_crest_factor;
    width[l] = layer.min_width * lanes[l].rule->width_mult;
    w_factor[l] = width[l] / (width[l] + layer.sigma_width);
    w_coef[l] = layer.c_area * layer.sigma_width;
    t_scale[l] = 1.0 + layer.sigma_thickness;
    activity[l] = tech.aggressor_activity;

    out[l] = NetExact{};
    out[l].cap_switched = bp.wire_cap_gnd[l] + bp.load_cap[l] +
                          miller_power[l] * bp.wire_cap_cpl[l];
  }

  // EM sweep. Wire lengths differ per lane here, so the uniform per-node
  // skip of the single-net batch becomes a per-(node, lane) test; each lane
  // still performs the scalar loop's operations on exactly its own wire
  // nodes, in node order.
  double* __restrict__ down_power = arena.alloc<double>(plane);
  extract::rc_downstream_batch(n, L, bp.parent, bp.cap_gnd, bp.cap_cpl,
                               miller_power, down_power);
  for (int i = 0; i < n; ++i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * L;
    for (int l = 0; l < L; ++l) {
      if (wl_lane[row + l] <= 0.0) continue;
      const double i_avg = em_fv[l] * down_power[row + l];
      const double i_rms = em_crest[l] * i_avg;
      out[l].em_peak = std::max(out[l].em_peak, i_rms / width[l]);
    }
  }

  double* __restrict__ down = arena.alloc<double>(plane);
  double* __restrict__ subtree = arena.alloc<double>(plane);
  double* __restrict__ m1 = arena.alloc<double>(plane);
  double* __restrict__ m2 = arena.alloc<double>(plane);
  extract::rc_moments_batch(n, L, bp.parent, bp.res, bp.cap_gnd, bp.cap_cpl,
                            driver_res, miller_one, down, subtree, m1, m2);
  double* delay_sum = arena.alloc_zeroed<double>(L);
  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(shape.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) {
      out[l].step_slew_worst = std::max(
          out[l].step_slew_worst, timing::step_slew(m1[row + l], m2[row + l]));
      const double d = timing::delay_d2m(m1[row + l], m2[row + l]);
      delay_sum[l] += d;
      out[l].wire_delay_worst = std::max(out[l].wire_delay_worst, d);
    }
  }
  for (int l = 0; l < L; ++l) {
    out[l].wire_delay_mean =
        n_loads == 0 ? 0.0 : delay_sum[l] / static_cast<double>(n_loads);
  }

  double* __restrict__ pert_res = arena.alloc<double>(plane);
  double* __restrict__ pert_cap = arena.alloc<double>(plane);
  double* __restrict__ pdown = arena.alloc<double>(plane);
  double* __restrict__ pm1 = arena.alloc<double>(plane);
  const double* __restrict__ b_res = bp.res;
  const double* __restrict__ b_cgnd = bp.cap_gnd;
  const double* __restrict__ b_ccpl = bp.cap_cpl;
  double* w_pert = arena.alloc<double>(static_cast<std::int64_t>(n_loads) * L);
  double* t_pert = arena.alloc<double>(static_cast<std::int64_t>(n_loads) * L);
  double* x_pert = arena.alloc<double>(static_cast<std::int64_t>(n_loads) * L);

  // Width +1 sigma, per-(node, lane) skip: non-wire rows keep base values
  // (a copy, no FP op — the scalar path's `continue`).
  for (int i = 0; i < n; ++i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * L;
    for (int l = 0; l < L; ++l) {
      const double wl = wl_lane[row + l];
      if (wl <= 0.0) {
        pert_res[row + l] = b_res[row + l];
        pert_cap[row + l] = b_cgnd[row + l];
      } else {
        pert_res[row + l] = b_res[row + l] * w_factor[l];
        pert_cap[row + l] = b_cgnd[row + l] + w_coef[l] * wl;
      }
    }
  }
  extract::rc_elmore_batch(n, L, bp.parent, pert_res, pert_cap, bp.cap_cpl,
                           driver_res, miller_one, pdown, pm1);
  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(shape.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) w_pert[li * L + l] = pm1[row + l];
  }

  // Thickness +1 sigma, same per-(node, lane) structure.
  for (int i = 0; i < n; ++i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * L;
    for (int l = 0; l < L; ++l) {
      if (wl_lane[row + l] <= 0.0) {
        pert_res[row + l] = b_res[row + l];
        pert_cap[row + l] = b_ccpl[row + l];
      } else {
        pert_res[row + l] = b_res[row + l] / t_scale[l];
        pert_cap[row + l] = b_ccpl[row + l] * t_scale[l];
      }
    }
  }
  extract::rc_elmore_batch(n, L, bp.parent, pert_res, bp.cap_gnd, pert_cap,
                           driver_res, miller_one, pdown, pm1);
  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(shape.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) t_pert[li * L + l] = pm1[row + l];
  }

  extract::rc_elmore_batch(n, L, bp.parent, bp.res, bp.cap_gnd, bp.cap_cpl,
                           driver_res, miller_delay, pdown, pm1);
  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(shape.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) x_pert[li * L + l] = pm1[row + l];
  }

  for (int li = 0; li < n_loads; ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(shape.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) {
      const double base = m1[row + l];
      const double dw = w_pert[li * L + l] - base;
      const double dt = t_pert[li * L + l] - base;
      out[l].sigma_worst =
          std::max(out[l].sigma_worst, std::sqrt(dw * dw + dt * dt));
      out[l].xtalk_worst =
          std::max(out[l].xtalk_worst,
                   activity[l] * std::max(0.0, x_pert[li * L + l] - base));
    }
  }
}

void evaluate_nets_exact_all_rules(const extract::NetGeometry* const* geoms,
                                   const double* driver_res, int n_nets,
                                   const tech::Technology& tech, double freq,
                                   common::Arena& arena, NetExact* out) {
  arena.reset();
  const int R = tech.rules.size();
  const int L = n_nets * R;
  extract::NetLane* lanes =
      arena.alloc<extract::NetLane>(static_cast<std::size_t>(L));
  double* dres = arena.alloc<double>(static_cast<std::size_t>(L));
  for (int i = 0; i < n_nets; ++i) {
    for (int r = 0; r < R; ++r) {
      lanes[i * R + r] = {geoms[i], &tech, &tech.rules[r]};
      dres[i * R + r] = driver_res[i];
    }
  }
  evaluate_nets_exact_batch(lanes, L, dres, freq, arena, out);
  common::note_arena_highwater(arena);
}

NetExact evaluate_net_exact(const netlist::ClockTree& tree,
                            const netlist::Design& design,
                            const tech::Technology& tech,
                            const netlist::Net& net,
                            const tech::RoutingRule& rule, double driver_res,
                            double freq) {
  // Fresh evaluation = geometry walk + the shared scratch-based kernels, so
  // cached (GeometryCache) and fresh results agree bit for bit.
  const extract::NetGeometry geom =
      extract::build_net_geometry(tree, design, net);
  NetEvalScratch scratch;
  NetExact out = evaluate_net_exact(geom, tech, rule, driver_res, freq,
                                    scratch);
  out.par = std::move(scratch.par);
  return out;
}

}  // namespace sndr::ndr
