#include "ndr/net_eval.hpp"

#include <algorithm>

#include "power/em.hpp"
#include "timing/delay_metrics.hpp"

namespace sndr::ndr {

NetSummary summarize_net(const netlist::ClockTree& tree,
                         const netlist::Design& design,
                         const tech::Technology& tech,
                         const netlist::Net& net,
                         const timing::AnalysisOptions& options) {
  NetSummary s;
  s.depth = net.depth;
  s.driver_res = timing::net_driver_res(tree, tech, net, options);
  s.load_count = static_cast<int>(net.loads.size());

  // Per-node path length from the driver, along the tree.
  std::vector<double> dist(tree.size(), 0.0);
  for (const int v : net.wires) {
    const netlist::TreeNode& n = tree.node(v);
    const double len = tree.edge_length(v);
    dist[v] = dist[n.parent] + len;  // driver's dist is 0.
    s.wirelength += len;
    geom::Path path = n.path;
    if (path.size() < 2) path = {tree.loc(n.parent), n.loc};
    s.occ_length += design.congestion.valid()
                        ? design.congestion.avg_occupancy(path) * len
                        : 0.0;
  }
  for (const int load : net.loads) {
    s.max_path = std::max(s.max_path, dist[load]);
    s.load_cap += extract::load_pin_cap(tree, design, tech, load);
  }
  return s;
}

double net_cap_under_rule(const NetSummary& s, const tech::Technology& tech,
                          const tech::RoutingRule& rule) {
  const tech::MetalLayer& layer = tech.clock_layer;
  const double cgnd = tech::wire_cap_gnd_per_um(layer, rule) * s.wirelength;
  const double ccpl =
      2.0 * tech::wire_cap_couple_per_um(layer, rule) * s.occ_length;
  return cgnd + tech.miller_power * ccpl + s.load_cap;
}

double net_em_bound(const NetSummary& s, const tech::Technology& tech,
                    const tech::RoutingRule& rule, double freq) {
  const double width = tech.clock_layer.min_width * rule.width_mult;
  const double cap = net_cap_under_rule(s, tech, rule);
  return tech.em_crest_factor * freq * tech.vdd * cap / width;
}

NetExact evaluate_net_exact(const netlist::ClockTree& tree,
                            const netlist::Design& design,
                            const tech::Technology& tech,
                            const netlist::Net& net,
                            const tech::RoutingRule& rule, double driver_res,
                            double freq) {
  NetExact out;
  const extract::Extractor extractor(tech, design);
  out.par = extractor.extract_net(tree, net, rule);
  out.cap_switched = out.par.switched_cap(tech.miller_power);
  out.em_peak = power::net_peak_current_density(out.par, tech, rule, freq);

  const std::vector<double> m1 = out.par.rc.elmore_delay(driver_res, 1.0);
  const std::vector<double> m2 = out.par.rc.second_moment(driver_res, 1.0);
  double delay_sum = 0.0;
  for (const int rc : out.par.load_rc_index) {
    out.step_slew_worst =
        std::max(out.step_slew_worst, timing::step_slew(m1[rc], m2[rc]));
    const double d = timing::delay_d2m(m1[rc], m2[rc]);
    delay_sum += d;
    out.wire_delay_worst = std::max(out.wire_delay_worst, d);
  }
  out.wire_delay_mean =
      out.par.load_rc_index.empty()
          ? 0.0
          : delay_sum / static_cast<double>(out.par.load_rc_index.size());

  const timing::NetVariationDetail var =
      timing::net_variation(out.par, tech, rule, driver_res);
  out.sigma_worst = var.worst_sigma();
  out.xtalk_worst = var.worst_xtalk();
  return out;
}

}  // namespace sndr::ndr
