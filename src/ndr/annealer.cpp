#include "ndr/annealer.hpp"

#include <cmath>

#include "common/thread_pool.hpp"
#include "ndr/assignment_state.hpp"
#include "obs/trace.hpp"
#include "workload/rng.hpp"

namespace sndr::ndr {

AnnealResult anneal_rules(const netlist::ClockTree& tree,
                          const netlist::Design& design,
                          const tech::Technology& tech,
                          const netlist::NetList& nets,
                          const RuleAssignment& start,
                          const AnnealOptions& options) {
  SNDR_TRACE_SPAN("anneal");
  AnnealResult result;
  result.assignment = start;

  common::CancelBinding cancel_binding(options.cancel);
  if (options.threads >= 0) common::set_thread_count(options.threads);
  AssignmentState state(tree, design, tech, nets, options.analysis,
                        options.geometry_budget_bytes,
                        options.shared_geometry);
  // Every full evaluation in this search shares the state's geometry cache:
  // the tree and congestion map are fixed, only rules move.
  const extract::GeometryCache* geometry = &state.geometry_cache();
  // Resume continues from the snapshot's assignment; `start` is still the
  // fallback the uninterrupted run would have kept.
  const bool resuming = options.resume.has_value();
  const RuleAssignment& boot = resuming ? options.resume->assignment : start;
  FlowEvaluation ev = evaluate(tree, design, tech, nets, boot,
                               options.analysis, geometry);
  state.rebuild(boot, ev);
  // Memo transplant (DSE reuse), after the rebuild settles every net's
  // context stamp: value-neutral by the guard in import_memo, so the
  // trajectory is exactly the one a cold run would take.
  if (options.memo_in != nullptr) state.import_memo(*options.memo_in);
  bool start_feasible;
  if (resuming) {
    result.start_cap = options.resume->start_cap;
    start_feasible = options.resume->start_feasible;
  } else {
    // Activity-weighted energy everywhere the annealer ranks states; the
    // weights are exactly 1.0 without clock domains, keeping caps (and
    // checkpoints) bitwise identical to the single-domain world.
    result.start_cap = state.total_energy();
    start_feasible = ev.feasible();
  }

  // Prefetch every memo row with cross-net batched kernels before the
  // sequential proposal loop: the annealer visits nets in RNG order, so
  // lazily-warmed rows run one net per kernel call; warming up front fills
  // the SIMD lanes with same-shaped nets instead. Bitwise-identical cached
  // values mean the trajectory is unchanged.
  if (options.prewarm && options.iterations > 0) state.warm_all_rows();

  const MoveMargins margins{options.slew_margin, options.uncertainty_margin,
                            options.em_margin, options.skew_margin};
  workload::Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 17);

  const int n_nets = nets.size();
  const int n_rules = tech.rules.size();
  const double mean_cap =
      state.total_energy() / std::max(1, n_nets);
  const double t_start = options.t_start_frac * mean_cap;
  const double t_end = std::max(options.t_end_frac * mean_cap, 1e-21);
  double cooling =
      options.iterations > 1
          ? std::pow(t_end / t_start, 1.0 / (options.iterations - 1))
          : 1.0;

  // Track the best feasible assignment seen.
  RuleAssignment best = start;
  double best_cap = state.total_energy();

  SNDR_GAUGE_SET("anneal.t_start", t_start);
  SNDR_GAUGE_SET("anneal.t_end", t_end);

  double temperature = t_start;
  int accepted_since_refresh = 0;
  int it0 = 0;
  if (resuming) {
    const AnnealCheckpoint& ck = *options.resume;
    it0 = ck.iteration;
    temperature = ck.temperature;
    cooling = ck.cooling;  // NOT re-derived: see AnnealCheckpoint.
    rng.set_state(ck.rng_state);
    accepted_since_refresh = ck.accepted_since_refresh;
    result.proposed = ck.proposed;
    result.accepted = ck.accepted;
    result.rejected = ck.rejected;
    result.uphill_accepted = ck.uphill_accepted;
    result.delta_updates = ck.delta_updates;
    result.full_rebuilds = ck.full_rebuilds;
    best = ck.best;
    best_cap = ck.best_cap;
  }
  for (int it = it0; it < options.iterations; ++it, temperature *= cooling) {
    options.cancel.check();
    SNDR_HISTOGRAM_OBSERVE("anneal.temperature", temperature);
    // The proposal body runs as an immediately-invoked closure so rejected
    // proposals (early returns) still fall through to the checkpoint hook
    // below — a snapshot cadence must not depend on acceptance.
    [&] {
      const int net_id = static_cast<int>(rng.uniform_int(n_nets));
      int rule = static_cast<int>(rng.uniform_int(n_rules));
      if (rule == state.rule_of(net_id)) {
        rule = (rule + 1) % n_rules;
      }
      ++result.proposed;

      const NetExact exact = state.exact_eval(net_id, rule);
      // Energy delta: switched cap weighted by the net's domain toggle
      // rate — gated/divided subtrees are proportionally cheaper, so the
      // Metropolis criterion spends its uphill budget where power really
      // lives. (a - b) * 1.0 == a - b, so the trajectory is bitwise
      // unchanged when domains are disabled.
      const double d_cap = (exact.cap_switched - state.net_cap(net_id)) *
                           state.net_weight(net_id);
      // DSE power axis: the Metropolis energy is the cap delta scaled by
      // the objective weight — weights < 1 soften the power term (uphill
      // cap moves survive more often, favoring the other axes), > 1
      // anneal harder on power. Exactly 1.0 is bitwise-neutral (IEEE
      // x * 1.0 == x), so single-point runs are unchanged.
      const double d_obj = d_cap * options.power_weight;
      if (d_obj > 0.0) {
        const double p = std::exp(-d_obj / temperature);
        if (rng.uniform() >= p) {
          ++result.rejected;
          return;
        }
      }
      NetImpact impact;
      impact.step_slew = exact.step_slew_worst;
      impact.sigma = exact.sigma_worst;
      impact.xtalk = exact.xtalk_worst;
      impact.delay = exact.wire_delay_worst;
      if (exact.em_peak >
          tech.clock_layer.em_jmax * (1.0 - options.em_margin)) {
        ++result.rejected;
        return;
      }
      if (!state.check_move(net_id, rule, impact, margins)) {
        ++result.rejected;
        return;
      }

      state.apply_move(net_id, rule, exact);
      ++result.accepted;
      ++result.delta_updates;
      if (d_obj > 0.0) ++result.uphill_accepted;

      if (state.total_energy() < best_cap) {
        best = state.assignment();
        best_cap = state.total_energy();
      }
      if (++accepted_since_refresh >= options.full_refresh_interval) {
        accepted_since_refresh = 0;
        ev = evaluate(tree, design, tech, nets, state.assignment(),
                      options.analysis, geometry);
        state.rebuild(state.assignment(), ev);
        ++result.full_rebuilds;
      }
    }();

    // Snapshot AFTER every RNG draw of this iteration: a resumed run picks
    // up at iteration `it + 1` with exactly the sequence the uninterrupted
    // run would have drawn.
    if (options.checkpoint_interval > 0 && options.checkpoint_sink &&
        ((it + 1) % options.checkpoint_interval == 0 ||
         it + 1 == options.iterations)) {
      AnnealCheckpoint ck;
      ck.iteration = it + 1;
      ck.temperature = temperature * cooling;  // next iteration's value.
      ck.cooling = cooling;
      ck.rng_state = rng.state();
      ck.accepted_since_refresh = accepted_since_refresh;
      ck.proposed = result.proposed;
      ck.accepted = result.accepted;
      ck.rejected = result.rejected;
      ck.uphill_accepted = result.uphill_accepted;
      ck.delta_updates = result.delta_updates;
      ck.full_rebuilds = result.full_rebuilds;
      ck.start_cap = result.start_cap;
      ck.start_feasible = start_feasible;
      ck.assignment = state.assignment();
      ck.best = best;
      ck.best_cap = best_cap;
      SNDR_COUNTER_ADD("anneal.checkpoints", 1);
      options.checkpoint_sink(ck);
    }
  }

  // Verify the best assignment exactly; fall back to the input if it does
  // not hold up (or if the input itself was infeasible, report honestly).
  ev = evaluate(tree, design, tech, nets, best, options.analysis, geometry);
  if (ev.feasible() || !start_feasible) {
    result.assignment = best;
    result.final_eval = std::move(ev);
  } else {
    result.assignment = start;
    result.final_eval = evaluate(tree, design, tech, nets, start,
                                 options.analysis, geometry);
  }
  result.end_cap = result.final_eval.power.weighted_switched_cap;
  result.exact_cache_hits = state.exact_cache_hits();
  result.exact_cache_misses = state.exact_cache_misses();
  state.flush_metrics();
  // Harvest the search's warm rows for the next DSE point (last writer in
  // the greedy→anneal sequence, so the donated rows reflect the final
  // context stamps).
  if (options.memo_out != nullptr) state.export_memo(*options.memo_out);
  SNDR_COUNTER_ADD("anneal.proposed", result.proposed);
  SNDR_COUNTER_ADD("anneal.accepted", result.accepted);
  SNDR_COUNTER_ADD("anneal.rejected", result.rejected);
  SNDR_COUNTER_ADD("anneal.uphill_accepted", result.uphill_accepted);
  SNDR_COUNTER_ADD("anneal.delta_updates", result.delta_updates);
  SNDR_COUNTER_ADD("anneal.full_rebuilds", result.full_rebuilds);
  return result;
}

}  // namespace sndr::ndr
