#include "ndr/evaluation.hpp"

#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "route/congestion_route.hpp"

namespace sndr::ndr {

RuleAssignment assign_all(const netlist::NetList& nets, int rule) {
  return RuleAssignment(static_cast<std::size_t>(nets.size()), rule);
}

RuleAssignment assign_level_based(const netlist::NetList& nets,
                                  int wide_levels, int wide_rule,
                                  int narrow_rule) {
  RuleAssignment a(static_cast<std::size_t>(nets.size()), narrow_rule);
  for (const netlist::Net& net : nets.nets) {
    if (net.depth < wide_levels) a[net.id] = wide_rule;
  }
  return a;
}

namespace {

/// Everything downstream of extraction; `ev` arrives with `assignment` and
/// `parasitics` filled.
FlowEvaluation finish_evaluation(const netlist::ClockTree& tree,
                                 const netlist::Design& design,
                                 const tech::Technology& tech,
                                 const netlist::NetList& nets,
                                 const RuleAssignment& assignment,
                                 const timing::AnalysisOptions& options,
                                 FlowEvaluation ev) {
  ev.timing = timing::analyze(tree, design, tech, nets, ev.parasitics,
                              options);
  ev.variation = timing::analyze_variation(tree, design, tech, nets,
                                           ev.parasitics, assignment,
                                           options);
  // Power, EM, and routing usage read only the (now frozen) parasitics and
  // assignment; they write disjoint reports, so they can run concurrently.
  netlist::RoutingUsage usage(&design.congestion);
  common::parallel_invoke(
      [&] {
        ev.power =
            power::analyze_power(tree, design, tech, nets, ev.parasitics);
      },
      [&] {
        ev.em =
            power::analyze_em(design, tech, nets, ev.parasitics, assignment);
      },
      [&] {
        usage = route::compute_usage(tree, nets, assignment, tech,
                                     design.congestion);
      });
  ev.max_track_util = usage.max_utilization();
  ev.overflow_cells = usage.overflow_cells();

  const netlist::ClockConstraints& c = design.constraints;
  ev.slew_violations = ev.timing.slew_violations(c.max_slew);
  ev.uncertainty_violations = ev.variation.violations(c.max_uncertainty);
  ev.em_violations = ev.em.violations();
  // Inter-clock (domain-pair) signoff; a disabled map returns an empty
  // report with zero violations, leaving single-domain results untouched.
  ev.inter_clock =
      report::check_inter_clock(tree, design, ev.timing, ev.variation);
  ev.inter_clock_violations = ev.inter_clock.violations;
  if (ev.inter_clock.enabled) {
    SNDR_GAUGE_SET("ndr.inter_clock.pairs",
                   static_cast<double>(ev.inter_clock.pairs.size()));
    SNDR_GAUGE_SET("ndr.inter_clock.worst_skew", ev.inter_clock.worst_skew);
    SNDR_GAUGE_SET("ndr.inter_clock.violations",
                   static_cast<double>(ev.inter_clock.violations));
  }
  if (design.useful_skew.enabled()) {
    // Useful-skew mode: per-sink windows around the mean latency replace
    // the global skew bound.
    const auto& lat = ev.timing.sink_arrival;
    const double mean =
        lat.empty() ? 0.0
                    : std::accumulate(lat.begin(), lat.end(), 0.0) /
                          static_cast<double>(lat.size());
    for (std::size_t s = 0; s < lat.size(); ++s) {
      const double off = lat[s] - mean;
      if (off < design.useful_skew.lo.at(s) ||
          off > design.useful_skew.hi.at(s)) {
        ++ev.window_violations;
      }
    }
    ev.skew_ok = true;  // the window check subsumes the global bound.
  } else {
    ev.skew_ok = ev.timing.skew() <= c.max_skew;
  }
  return ev;
}

}  // namespace

FlowEvaluation evaluate(const netlist::ClockTree& tree,
                        const netlist::Design& design,
                        const tech::Technology& tech,
                        const netlist::NetList& nets,
                        const RuleAssignment& assignment,
                        const timing::AnalysisOptions& options,
                        const extract::GeometryCache* geometry) {
  if (assignment.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument("ndr::evaluate: assignment size mismatch");
  }
  SNDR_TRACE_SPAN("evaluate");
  SNDR_COUNTER_ADD("ndr.evaluations", 1);
  FlowEvaluation ev;
  ev.assignment = assignment;
  const extract::Extractor extractor(tech, design);
  ev.parasitics = extractor.extract_all(tree, nets, assignment, geometry);
  return finish_evaluation(tree, design, tech, nets, assignment, options,
                           std::move(ev));
}

FlowEvaluation evaluate_with_parasitics(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const RuleAssignment& assignment,
    std::vector<extract::NetParasitics> parasitics,
    const timing::AnalysisOptions& options) {
  if (assignment.size() != static_cast<std::size_t>(nets.size()) ||
      parasitics.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument(
        "ndr::evaluate_with_parasitics: per-net input size mismatch");
  }
  SNDR_TRACE_SPAN("evaluate");
  SNDR_COUNTER_ADD("ndr.evaluations", 1);
  FlowEvaluation ev;
  ev.assignment = assignment;
  ev.parasitics = std::move(parasitics);
  return finish_evaluation(tree, design, tech, nets, assignment, options,
                           std::move(ev));
}

}  // namespace sndr::ndr
