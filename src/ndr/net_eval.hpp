// Exact and analytic per-net evaluation under a candidate rule.
//
// These are the net-local quantities the optimizer needs when it considers
// re-assigning one net's rule. Everything here is independent of the rest of
// the tree given the driver's resistance and output slew, which is what
// makes per-net rule optimization tractable:
//
//  * switched capacitance  — analytic (exact) from net length statistics;
//  * EM current density    — analytic conservative bound from total cap;
//  * worst step slew, process sigma, crosstalk delta — exact via per-net
//    re-extraction (used to label model training data and to validate
//    commits), or predicted by the learned models (used for fast scoring).
#pragma once

#include "common/arena.hpp"
#include "extract/batch.hpp"
#include "extract/extractor.hpp"
#include "extract/net_geometry.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"
#include "timing/variation.hpp"

namespace sndr::ndr {

/// Rule-independent summary of one net's geometry and loads; all analytic
/// per-rule quantities derive from it.
struct NetSummary {
  double wirelength = 0.0;  ///< um.
  double occ_length = 0.0;  ///< um, occupancy-weighted wirelength.
  double max_path = 0.0;    ///< um, driver -> farthest load along the route.
  double load_cap = 0.0;    ///< F, sum of load pin caps.
  int load_count = 0;
  double driver_res = 0.0;  ///< ohm.
  int depth = 0;            ///< buffer depth of the net.
};

NetSummary summarize_net(const netlist::ClockTree& tree,
                         const netlist::Design& design,
                         const tech::Technology& tech,
                         const netlist::Net& net,
                         const timing::AnalysisOptions& options);

/// Exact switched capacitance of the net under `rule` (power accounting,
/// with the average Miller factor on coupling).
double net_cap_under_rule(const NetSummary& s, const tech::Technology& tech,
                          const tech::RoutingRule& rule);

/// Conservative (driver-piece) EM RMS current density bound under `rule`.
double net_em_bound(const NetSummary& s, const tech::Technology& tech,
                    const tech::RoutingRule& rule, double freq);

/// Exact net-local metrics under `rule`, from a fresh per-net extraction.
struct NetExact {
  extract::NetParasitics par;
  double cap_switched = 0.0;    ///< F.
  double step_slew_worst = 0.0; ///< s, worst load step slew (pre-PERI).
  double sigma_worst = 0.0;     ///< s.
  double xtalk_worst = 0.0;     ///< s.
  double em_peak = 0.0;         ///< A/um.
  double wire_delay_mean = 0.0; ///< s, mean D2M wire delay over loads.
  double wire_delay_worst = 0.0;///< s.
};

NetExact evaluate_net_exact(const netlist::ClockTree& tree,
                            const netlist::Design& design,
                            const tech::Technology& tech,
                            const netlist::Net& net,
                            const tech::RoutingRule& rule, double driver_res,
                            double freq);

/// Reusable buffers for the geometry-based evaluate_net_exact overload:
/// the materialized parasitics, the fused moment scratch, the EM downstream
/// sweep, and the variation scratch. One warm instance makes repeated
/// per-(net, rule) exact evaluation allocation-free.
struct NetEvalScratch {
  extract::NetParasitics par;
  extract::RcMoments moments;
  std::vector<double> down_power;  ///< downstream cap at miller_power (EM).
  timing::VariationScratch variation;
  timing::NetVariationDetail detail;
};

/// Exact evaluation from pre-built rule-independent geometry: materializes
/// parasitics for `rule` and runs the fused moment / variation / EM kernels
/// entirely in `scratch`. Scalar results are bit-identical to the fresh
/// overload above (which delegates here); `par` is left empty — the
/// materialized parasitics stay in `scratch.par` for callers that want them.
NetExact evaluate_net_exact(const extract::NetGeometry& geom,
                            const tech::Technology& tech,
                            const tech::RoutingRule& rule, double driver_res,
                            double freq, NetEvalScratch& scratch);

/// Batched exact evaluation: scores the shared geometry under `n_lanes`
/// electrical contexts — (tech, rule) pairs with per-lane driver
/// resistance — in one fused pass (materialize_batch + one EM sweep + one
/// moment solve + three perturbed Elmore solves, lane loop innermost).
/// out[l] is bit-identical to the scalar scratch overload called with
/// lane l's context, `par` left empty. All scratch is carved from `arena`
/// WITHOUT resetting it (so callers may keep lane arrays there); the
/// caller resets the arena once per net.
void evaluate_net_exact_batch(const extract::NetGeometry& geom,
                              const extract::EvalLane* lanes, int n_lanes,
                              const double* driver_res, double freq,
                              common::Arena& arena, NetExact* out);

/// Rule-sweep entry point: resets `arena`, then evaluates the net under
/// EVERY rule of `tech` at the given driver resistance. `out` must hold
/// tech.rules.size() entries; out[r] corresponds to tech.rules[r]. This is
/// what AssignmentState uses to warm a whole memo row on first miss and
/// what the bench compares against the scalar per-rule sweep.
void evaluate_net_exact_all_rules(const extract::NetGeometry& geom,
                                  const tech::Technology& tech,
                                  double driver_res, double freq,
                                  common::Arena& arena, NetExact* out);

/// CROSS-NET batched exact evaluation: lanes are (net geometry, rule) pairs
/// over SAME-SHAPED nets (see extract::bucket_nets_by_shape), with per-lane
/// driver resistance. out[l] is bit-identical to the scalar scratch
/// overload called with lane l's net and context — piece lengths differ per
/// lane, so the uniform wire-length skips of the single-net batch become
/// per-(node, lane) conditionals, which preserves each lane's scalar FP
/// sequence exactly. Arena is NOT reset (mirrors evaluate_net_exact_batch).
void evaluate_nets_exact_batch(const extract::NetLane* lanes, int n_lanes,
                               const double* driver_res, double freq,
                               common::Arena& arena, NetExact* out);

/// Multi-net rule-sweep entry point: resets `arena`, then evaluates each of
/// the `n_nets` same-shaped geometries under EVERY rule of `tech` in one
/// cross-net batch (lanes net-outer × rule-inner). out[i * R + r] is
/// geoms[i] under tech.rules[r], bit-identical to
/// evaluate_net_exact_all_rules(*geoms[i], ...). This is how warm-row
/// prefetches, greedy sweeps, and predictor labeling fill the SIMD lanes
/// that a single net's rule sweep leaves mostly empty.
void evaluate_nets_exact_all_rules(const extract::NetGeometry* const* geoms,
                                   const double* driver_res, int n_nets,
                                   const tech::Technology& tech, double freq,
                                   common::Arena& arena, NetExact* out);

}  // namespace sndr::ndr
