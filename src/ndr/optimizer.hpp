// Smart non-default-rule assignment: the paper's core contribution.
//
// Starting from the conventional blanket NDR (every clock net at 2W2S), the
// optimizer walks the nets greedily, moving each to the cheapest rule that
// still satisfies every constraint:
//
//   * slew      — PERI(driver output slew, wire step slew) <= max_slew;
//   * skew      — each sink's latency must stay inside a window of width
//                 max_skew centered on the blanket-NDR latency spread;
//   * variation — 3*sigma + crosstalk accumulated to each sink stays below
//                 max_uncertainty;
//   * EM        — RMS current density under the rule's width stays below
//                 the layer limit;
//   * resources — per-region routing capacity is never exceeded.
//
// Candidate scoring uses the learned per-rule models (plus exact analytic
// capacitance and EM bounds); a commit is validated with an exact per-net
// re-extraction, and periodic full analyses re-synchronize the incremental
// state. `use_models = false` degenerates to exact re-extraction scoring,
// which is the slow flow the paper compares against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/cancel.hpp"
#include "ndr/evaluation.hpp"
#include "ndr/net_eval.hpp"
#include "ndr/predictor.hpp"
#include "obs/metrics.hpp"

namespace sndr::extract {
class GeometryCache;  // net_geometry.hpp
}  // namespace sndr::extract

namespace sndr::ndr {

struct MemoSnapshot;  // assignment_state.hpp

/// How candidate (net, rule) moves are scored before the commit validation.
enum class Scoring {
  kModels,    ///< learned per-rule models (the paper's method).
  kExactNet,  ///< exact per-net re-extraction per candidate.
  kFullSta,   ///< full extraction + STA per candidate (the naive flow the
              ///< paper's runtime comparison is against; very slow).
};

struct OptimizerOptions {
  Scoring scoring = Scoring::kModels;
  bool use_models = true;  ///< legacy alias; false selects kExactNet.
  int training_samples = 400;

  /// Parallelism for the evaluation engine: -1 inherits the process-wide
  /// setting (default: hardware concurrency), 0/1 force the serial
  /// fallback, N uses N lanes. Applied via common::set_thread_count at
  /// flow entry. Results are bit-identical at any value.
  int threads = -1;

  // Guard bands, as fractions of each constraint kept in reserve by the
  // estimate-driven loop (the final exact verification uses the raw limits).
  double slew_margin = 0.05;
  double uncertainty_margin = 0.05;
  double em_margin = 0.05;
  double skew_margin = 0.10;

  /// Byte budget for the shared GeometryCache (0 = unbounded). Under a
  /// budget the cache LRU-evicts cold net geometries and rebuilds them on
  /// demand; results stay bit-identical, only peak memory and the build
  /// count change. See DESIGN.md "Memory budget".
  std::size_t geometry_budget_bytes = 0;

  int max_passes = 4;          ///< greedy sweeps until quiescence.
  int full_refresh_interval = 256;  ///< exact full re-analysis cadence.
  int max_repair_rounds = 8;

  // ECO / incremental mode. A warm start re-optimizes from a previous
  // assignment instead of the blanket (e.g. after a constraint change or a
  // local tree edit); `focus_nets` restricts the greedy sweeps to the nets
  // affected by the change (repair may still touch others to restore
  // feasibility). Empty = full optimization from blanket.
  RuleAssignment initial_assignment;
  std::vector<int> focus_nets;

  /// Cooperative cancellation: checked between nets in the greedy sweeps,
  /// between passes, and between repair rounds. On cancel the optimizer
  /// unwinds with common::Cancelled (no partial result is returned); the
  /// flow boundary classifies it as kCancelled. A default token is never
  /// cancelled, so standalone callers pay one relaxed load per net.
  common::CancelToken cancel;

  /// Pre-trained predictor to reuse instead of training in-run (the serve
  /// layer's SharedCache hands these out). Training is deterministic in
  /// (tree, design, tech, nets, analysis, training_samples, geometry), so
  /// a cache hit is bitwise-identical to training fresh. Ignored when
  /// scoring != kModels. Null = train here.
  std::shared_ptr<const RuleImpactPredictor> shared_predictor;

  /// Objective weight on switched capacitance. The greedy objective is
  /// pure min-cap per net, which is scale-invariant — this knob does NOT
  /// change the greedy result; it exists so one FlowConfig carries the
  /// weight to the annealer (where it scales the Metropolis energy) and
  /// the DSE sweep can treat it as an axis. Must be > 0.
  double power_weight = 1.0;

  /// Borrow an externally owned GeometryCache instead of building one.
  /// The cache is a pure function of (tree, design, nets, budget,
  /// extract options), so sharing it across searches over the same tree is
  /// value-neutral: results are bitwise identical to building fresh. The
  /// pointer must outlive the run; geometry_budget_bytes is ignored when
  /// set. Null = build here (the historical mode).
  const extract::GeometryCache* shared_geometry = nullptr;

  /// Cross-run memo transplant (DSE warm reuse). `memo_in` donates warm
  /// exact-eval rows: a row is adopted only where the net's evaluation
  /// context (today: driver resistance) is bitwise unchanged, so adopted
  /// values equal what a cold eval would compute — value-neutral by the
  /// exact_eval memo contract. `memo_out` receives this run's final warm
  /// rows for the next point. Both may be null (standalone runs).
  const MemoSnapshot* memo_in = nullptr;
  MemoSnapshot* memo_out = nullptr;

  timing::AnalysisOptions analysis;
};

struct OptimizerStats {
  int commits = 0;
  int candidates_scored = 0;
  int exact_net_evals = 0;  ///< exact_eval calls (cache hits included).
  int full_evals = 0;
  int repair_upgrades = 0;
  int passes = 0;
  double train_seconds = 0.0;
  double optimize_seconds = 0.0;

  /// exact_eval memo-cache counters (AssignmentState).
  std::int64_t exact_cache_hits = 0;
  std::int64_t exact_cache_misses = 0;
  double exact_cache_hit_rate() const {
    return obs::safe_ratio(exact_cache_hits,
                           exact_cache_hits + exact_cache_misses);
  }
  int threads_used = 0;  ///< resolved lane count the flow ran with.
};

struct SmartNdrResult {
  RuleAssignment assignment;
  FlowEvaluation final_eval;  ///< exact signoff of the final assignment.
  OptimizerStats stats;
  TrainReport train_report;   ///< empty when use_models is false.
  /// Histogram: rule_count[rule] = number of nets on that rule.
  std::vector<int> rule_histogram;
  /// The predictor this run scored with (trained here, or the shared one
  /// passed in) — harvestable into a serve::SharedCache so later jobs on
  /// the same (design, tech, samples) skip training. Null when
  /// scoring != kModels.
  std::shared_ptr<const RuleImpactPredictor> trained_predictor;
};

/// Runs the full smart-NDR flow on a synthesized tree.
SmartNdrResult optimize_smart_ndr(const netlist::ClockTree& tree,
                                  const netlist::Design& design,
                                  const tech::Technology& tech,
                                  const netlist::NetList& nets,
                                  const OptimizerOptions& options = {});

}  // namespace sndr::ndr
