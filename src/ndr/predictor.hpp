// Learned per-rule impact models (the paper's machine-learning component).
//
// Re-extracting and re-timing every candidate (net, rule) pair inside the
// optimization loop is what makes naive per-net NDR assignment impractical;
// the paper's answer is to learn cheap models that map per-net features to
// the timing-relevant responses of each candidate rule. We train one ridge
// regression per (rule, metric) on a stratified sample of nets labeled by
// the exact per-net engines, and report holdout accuracy (Table IV). The
// metrics modeled are exactly the net-local quantities the optimizer needs:
//
//   step_slew — worst-load wire step slew (pre-PERI),
//   sigma     — worst-load process delay variation,
//   xtalk     — worst-load crosstalk delta-delay,
//   delay     — worst-load wire delay (for skew estimation).
//
// Switched capacitance and the EM bound are analytic (see net_eval.hpp) and
// need no model.
#pragma once

#include <array>
#include <vector>

#include "ndr/linear_model.hpp"
#include "ndr/net_eval.hpp"

namespace sndr::ndr {

/// Feature vector of a net (rule-independent).
std::vector<double> net_feature_vector(const NetSummary& s);

struct NetImpact {
  double step_slew = 0.0;  ///< s.
  double sigma = 0.0;      ///< s.
  double xtalk = 0.0;      ///< s.
  double delay = 0.0;      ///< s, worst-load wire delay.
};

struct ModelQuality {
  double mae = 0.0;
  double r2 = 0.0;
  double rank_corr = 0.0;
};

struct TrainReport {
  int train_samples = 0;
  int holdout_samples = 0;
  /// quality[rule][metric]; metric order: step_slew, sigma, xtalk, delay.
  std::vector<std::array<ModelQuality, 4>> quality;
};

class RuleImpactPredictor {
 public:
  /// Trains on up to `max_samples` nets of the given tree, stratified by
  /// net depth so root trunks and leaf nets are both represented.
  /// `holdout_frac` of samples are withheld for the accuracy report.
  /// Labeling is the dominant cost — one exact per-(sample, rule)
  /// evaluation each — so pass a `geometry` cache for the same tree to
  /// label from pre-built geometry instead of re-walking every sample
  /// (bit-identical labels either way).
  static RuleImpactPredictor train(const netlist::ClockTree& tree,
                                   const netlist::Design& design,
                                   const tech::Technology& tech,
                                   const netlist::NetList& nets,
                                   const timing::AnalysisOptions& options,
                                   int max_samples = 400,
                                   double holdout_frac = 0.2,
                                   const extract::GeometryCache* geometry =
                                       nullptr);

  NetImpact predict(const NetSummary& s, int rule) const;

  const TrainReport& report() const { return report_; }
  int rule_count() const { return static_cast<int>(models_.size()); }

 private:
  std::vector<std::array<RidgeRegression, 4>> models_;  ///< per rule.
  TrainReport report_;
};

}  // namespace sndr::ndr
