// Full "signoff" evaluation of a clock tree under a rule assignment:
// extraction, timing, variation, EM, power, and routing-resource checks in
// one call. This is the ground truth every optimizer variant is validated
// against, and the engine behind all reported tables.
#pragma once

#include <vector>

#include "extract/extractor.hpp"
#include "extract/net_geometry.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "power/clock_power.hpp"
#include "power/em.hpp"
#include "report/inter_clock.hpp"
#include "tech/technology.hpp"
#include "timing/tree_timing.hpp"
#include "timing/variation.hpp"

namespace sndr::ndr {

/// A rule assignment: rule index (into Technology::rules) per net id.
using RuleAssignment = std::vector<int>;

/// Every net gets the same rule.
RuleAssignment assign_all(const netlist::NetList& nets, int rule);

/// The industry middle-ground baseline: nets in the top `wide_levels` of the
/// buffer hierarchy (depth < wide_levels) get `wide_rule`; the rest get
/// `narrow_rule`.
RuleAssignment assign_level_based(const netlist::NetList& nets,
                                  int wide_levels, int wide_rule,
                                  int narrow_rule);

struct FlowEvaluation {
  RuleAssignment assignment;
  std::vector<extract::NetParasitics> parasitics;
  timing::TimingReport timing;
  timing::VariationReport variation;
  power::PowerReport power;
  power::EmReport em;
  /// Domain-pair skew signoff; empty/disabled without clock domains.
  report::InterClockReport inter_clock;

  double max_track_util = 0.0;
  int overflow_cells = 0;

  int slew_violations = 0;
  int uncertainty_violations = 0;
  int em_violations = 0;
  /// Sinks outside their useful-skew window (0 when windows are disabled).
  int window_violations = 0;
  /// Domain pairs over their inter-clock budget (0 without domains).
  int inter_clock_violations = 0;
  bool skew_ok = true;

  bool feasible() const {
    return slew_violations == 0 && uncertainty_violations == 0 &&
           em_violations == 0 && skew_ok && window_violations == 0 &&
           inter_clock_violations == 0 && overflow_cells == 0;
  }
};

/// Runs the whole analysis stack. `nets` must come from build_nets(tree).
/// Pass a `geometry` cache built for the same tree/congestion state to skip
/// the per-net geometry walk during extraction (bit-identical results);
/// geometry is corner-invariant, so the same cache serves derated `tech`
/// clones too.
FlowEvaluation evaluate(const netlist::ClockTree& tree,
                        const netlist::Design& design,
                        const tech::Technology& tech,
                        const netlist::NetList& nets,
                        const RuleAssignment& assignment,
                        const timing::AnalysisOptions& options = {},
                        const extract::GeometryCache* geometry = nullptr);

/// evaluate() with the extraction stage already done: `parasitics` (one
/// entry per net, moved into the result) must be what extract_all would
/// produce for (tree, nets, assignment) under `tech` — then the result is
/// bit-identical to evaluate(). Lets callers that already hold per-net
/// parasitics (e.g. corner signoff, which batch-materializes all corners
/// from one geometry pass) skip re-extraction.
FlowEvaluation evaluate_with_parasitics(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const RuleAssignment& assignment,
    std::vector<extract::NetParasitics> parasitics,
    const timing::AnalysisOptions& options = {});

}  // namespace sndr::ndr
