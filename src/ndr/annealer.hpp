// Simulated-annealing refinement of a rule assignment.
//
// The greedy optimizer commits the cheapest feasible rule per net in
// leaf-first order; because moves interact only weakly (through the shared
// skew window, uncertainty budgets, and routing capacity), greedy is close
// to optimal — this annealer exists to *measure* that gap (Ablation D) and
// to squeeze the last fraction of a percent when runtime is free.
//
// Moves are single-net rule changes validated with exact per-net
// evaluation; energy is the total ACTIVITY-WEIGHTED switched capacitance
// (per-net toggle weights from design.clock_domains; all 1.0 — and the
// trajectory bitwise unchanged — without domains). Uphill moves are
// accepted with the Metropolis criterion on a geometric cooling schedule.
// Infeasible moves are never accepted, so every intermediate state remains
// signoff-clean (up to the incremental approximations, which a final full
// evaluation verifies).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "ndr/evaluation.hpp"
#include "ndr/optimizer.hpp"
#include "obs/metrics.hpp"

namespace sndr::ndr {

/// Resumable snapshot of the annealing loop, taken between iterations.
/// Restoring one and continuing reproduces the uninterrupted run bit for
/// bit: the RNG state replays the same proposal sequence, rebuilding the
/// incremental state from `assignment` is bitwise-exact (the apply_move
/// contract), and `temperature`/`cooling` are carried verbatim rather than
/// re-derived — re-derivation would use the resumed assignment's cap, not
/// the start assignment's.
struct AnnealCheckpoint {
  int iteration = 0;  ///< next iteration to run; == iterations when done.
  double temperature = 0.0;
  double cooling = 1.0;
  std::uint64_t rng_state = 0;
  int accepted_since_refresh = 0;
  int proposed = 0;
  int accepted = 0;
  int rejected = 0;
  int uphill_accepted = 0;
  int delta_updates = 0;
  int full_rebuilds = 0;
  double start_cap = 0.0;
  bool start_feasible = false;
  RuleAssignment assignment;  ///< current (not best) assignment.
  RuleAssignment best;
  double best_cap = 0.0;
};

struct AnnealOptions {
  int iterations = 20000;
  /// Starting temperature as a fraction of the mean per-net switched cap;
  /// ends at `t_end_frac` of the same on a geometric schedule.
  double t_start_frac = 0.5;
  double t_end_frac = 0.005;
  std::uint64_t seed = 1;
  /// Exact full re-analysis cadence (accepted moves).
  int full_refresh_interval = 512;
  /// Guard bands during move checking (the annealer inherits the greedy
  /// result's margins by default).
  double slew_margin = 0.05;
  double uncertainty_margin = 0.05;
  double em_margin = 0.05;
  double skew_margin = 0.10;
  /// Same semantics as OptimizerOptions::threads (-1 inherits global).
  int threads = -1;
  /// Prefetch every net's exact-eval memo row up front with cross-net
  /// batched kernels (shape-bucketed lanes). Values are bitwise equal to
  /// the lazy per-net path, so this changes WHEN the evaluation work
  /// happens, never any result; disable to measure the lazy path.
  bool prewarm = true;
  /// Byte budget for the search's GeometryCache (0 = unbounded); same
  /// semantics as OptimizerOptions::geometry_budget_bytes.
  std::size_t geometry_budget_bytes = 0;
  /// Objective weight on switched capacitance: the Metropolis energy of a
  /// move is d_cap * power_weight, so weights < 1 accept uphill moves more
  /// readily (trading power for the other axes) and weights > 1 anneal
  /// harder on power. Exactly 1.0 is bitwise-neutral (IEEE x*1.0 == x).
  /// Must be > 0. This is the DSE power axis.
  double power_weight = 1.0;
  /// Borrow an externally owned GeometryCache; same value-neutral contract
  /// as OptimizerOptions::shared_geometry. Null = build here.
  const extract::GeometryCache* shared_geometry = nullptr;
  /// Cross-run memo transplant; same contract as
  /// OptimizerOptions::memo_in / memo_out. Both may be null.
  const MemoSnapshot* memo_in = nullptr;
  MemoSnapshot* memo_out = nullptr;
  /// Checkpointing: every `checkpoint_interval` iterations (and at the
  /// last one) the loop hands a snapshot to `checkpoint_sink`. Both must
  /// be set for snapshots to flow; the default is none (zero overhead).
  int checkpoint_interval = 0;
  std::function<void(const AnnealCheckpoint&)> checkpoint_sink;
  /// Continue from a snapshot instead of starting at `start`. The `start`
  /// argument must still be the original start assignment — it remains the
  /// infeasibility fallback, exactly as in the uninterrupted run.
  std::optional<AnnealCheckpoint> resume;
  /// Cooperative cancellation, checked at the top of every iteration. The
  /// loop unwinds with common::Cancelled *after* the previous iteration's
  /// checkpoint hook ran, so the last snapshot written is exactly one the
  /// uninterrupted run would have produced — resuming from it and running
  /// to completion is bitwise identical to never cancelling.
  common::CancelToken cancel;
  timing::AnalysisOptions analysis;
};

struct AnnealResult {
  RuleAssignment assignment;
  FlowEvaluation final_eval;
  int proposed = 0;
  int accepted = 0;
  int rejected = 0;  ///< proposed == accepted + rejected, always.
  int uphill_accepted = 0;
  /// Incremental (delta-timing) state updates vs whole-tree re-analyses:
  /// delta_updates counts accepted moves applied through the O(pieces +
  /// subtree) path; full_rebuilds counts the in-loop reference resyncs
  /// (every full_refresh_interval accepted moves).
  int delta_updates = 0;
  int full_rebuilds = 0;
  double start_cap = 0.0;  ///< F, activity-weighted switched cap at start.
  double end_cap = 0.0;    ///< F, activity-weighted (== raw w/o domains).

  /// exact_eval memo-cache counters (the annealer's dominant cost).
  std::int64_t exact_cache_hits = 0;
  std::int64_t exact_cache_misses = 0;
  double exact_cache_hit_rate() const {
    return obs::safe_ratio(exact_cache_hits,
                           exact_cache_hits + exact_cache_misses);
  }
};

/// Refines `start` (typically the greedy optimizer's assignment). The
/// returned assignment is exactly `start` if no improving sequence was
/// found or if annealing ended infeasible (fallback).
AnnealResult anneal_rules(const netlist::ClockTree& tree,
                          const netlist::Design& design,
                          const tech::Technology& tech,
                          const netlist::NetList& nets,
                          const RuleAssignment& start,
                          const AnnealOptions& options = {});

}  // namespace sndr::ndr
