// Incremental bookkeeping for rule-assignment search.
//
// Both the greedy optimizer and the annealer explore (net, rule) moves and
// need the same machinery: per-net summaries and current metrics, per-sink
// latency / variance / crosstalk accumulators, routing-usage tracking, and
// latency windows. This class owns that state and offers move checking /
// application with exactly the approximations documented in optimizer.hpp;
// callers periodically re-synchronize against a full evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "ndr/evaluation.hpp"
#include "ndr/net_eval.hpp"
#include "ndr/predictor.hpp"
#include "obs/metrics.hpp"
#include "timing/delta_timing.hpp"

namespace sndr::ndr {

/// Guard bands used during move checking (fractions of each constraint).
struct MoveMargins {
  double slew = 0.0;
  double uncertainty = 0.0;
  double em = 0.0;
  double skew = 0.0;
};

/// Portable snapshot of the exact-eval memo for cross-search transplant
/// (the DSE sweep hands one search's warm rows to the next point). A row
/// is importable only where the net's evaluation context is bitwise
/// unchanged — `driver_res` records the context each row was computed
/// under, and import_memo() re-checks it against the receiving state, so
/// an adopted row always equals what a cold eval would produce.
struct MemoSnapshot {
  int n_rules = 0;
  std::vector<double> driver_res;  ///< per-net context the rows assume.
  std::vector<char> row_warm;      ///< per-net: every rule entry valid.
  std::vector<NetExact> rows;      ///< [net][rule] flat, scalars only.

  bool empty() const { return rows.empty(); }
};

class AssignmentState {
 public:
  /// `geometry_budget_bytes` caps the shared GeometryCache (0 = unbounded,
  /// the historical eager mode); see OptimizerOptions::geometry_budget_bytes.
  /// `shared_geometry`, when non-null, borrows an externally owned cache
  /// instead (value-neutral; see OptimizerOptions::shared_geometry) and
  /// the budget argument is ignored.
  AssignmentState(const netlist::ClockTree& tree,
                  const netlist::Design& design,
                  const tech::Technology& tech, const netlist::NetList& nets,
                  const timing::AnalysisOptions& analysis,
                  std::size_t geometry_budget_bytes = 0,
                  const extract::GeometryCache* shared_geometry = nullptr);

  /// Re-synchronizes every incremental accumulator from a full evaluation
  /// of `assignment` (which becomes the current assignment).
  void rebuild(const RuleAssignment& assignment, const FlowEvaluation& ev);

  const RuleAssignment& assignment() const { return assignment_; }
  int rule_of(int net_id) const { return assignment_.at(net_id); }

  /// Rule-independent summary of a net.
  const NetSummary& summary(int net_id) const {
    return nets_state_[net_id].summary;
  }
  /// Current switched cap of a net under its assigned rule (raw).
  double net_cap(int net_id) const { return nets_state_[net_id].cap; }
  /// Total raw switched capacitance.
  double total_cap() const { return total_cap_; }

  /// Clock-domain toggle weight of a net (1.0 in the single-domain world).
  double net_weight(int net_id) const { return net_weight_[net_id]; }
  /// Activity-weighted switched cap of a net — the optimization energy
  /// term. Bitwise equal to net_cap() when domains are disabled.
  double net_energy(int net_id) const {
    return net_weight_[net_id] * nets_state_[net_id].cap;
  }
  /// Total activity-weighted switched capacitance (the search energy);
  /// bitwise equal to total_cap() when domains are disabled.
  double total_energy() const { return total_energy_; }

  /// Transition at the loads of `net_id` if its wire step slew were `step`.
  double slew_at_loads(int net_id, double step_slew) const;

  /// Checks a candidate move against every constraint using predicted or
  /// exact per-net metrics in `impact`.
  bool check_move(int net_id, int rule_idx, const NetImpact& impact,
                  const MoveMargins& margins) const;

  /// Applies a validated move; `exact` must be the exact evaluation of the
  /// net under the new rule.
  ///
  /// Exact and incremental since PR 6: the net's parasitics are
  /// re-materialized under the new rule and a delta-timing replay updates
  /// sink latencies along the net's descendant subtree (O(pieces +
  /// subtree)); the latency / variance / crosstalk / cap accumulators are
  /// then re-derived in rebuild()'s exact floating-point order over the
  /// affected sinks only, so the state stays BITWISE identical to a fresh
  /// rebuild() of the same assignment (asserted there in debug builds;
  /// routing usage keeps its own incremental bookkeeping and is excluded).
  void apply_move(int net_id, int rule_idx, const NetExact& exact);

  /// Exact per-net evaluation of a candidate rule (driver model included).
  ///
  /// Results are memoized per (net, rule) under a per-net context stamp
  /// keyed on what actually feeds evaluate_net_exact. The candidate rule is
  /// part of the key, so the only mutable input is the net's electrical
  /// context (today: its driver resistance). apply_move() and rebuild()
  /// are the invalidation points: each advances a net's stamp (dropping
  /// its cached row) iff that input changed — rebuild() re-derives the
  /// context per net; a move changes no exact-eval input, so the cache
  /// survives both in the common case. Both hits and misses return the
  /// scalar metrics with `par` left empty (no caller consumes the
  /// parasitics; the cache stays a few doubles per entry instead of a
  /// full RC tree). A miss warms the WHOLE rule row: the batched kernels
  /// (evaluate_net_exact_all_rules) score every rule in one fused pass
  /// over the shared GeometryCache — no geometry walk, no congestion
  /// query, no allocation past a warm per-thread arena — and one miss is
  /// counted per row fill, so hit rates read as "rows already warm".
  NetExact exact_eval(int net_id, int rule_idx) const;

  /// Prefetches the exact-eval memo rows of `net_ids` (cold rows only)
  /// using CROSS-NET batches: nets are grouped by geometry shape
  /// (extract::bucket_nets_by_shape) and same-shaped nets ride one
  /// lane-interleaved kernel call, so single-rule consumers (greedy sweeps,
  /// pending annealer proposals) fill the SIMD lanes a per-net rule sweep
  /// leaves empty. Batch composition is deterministic and independent of
  /// the thread count; workers fill disjoint memo rows with values bitwise
  /// equal to the lazy exact_eval path, so warming never changes any
  /// downstream result — only when the work happens. One miss is counted
  /// per row filled, as in exact_eval.
  void warm_rows(const std::vector<int>& net_ids) const;

  /// warm_rows over every net (the annealer's prewarm).
  void warm_all_rows() const;

  /// Rule-independent net geometry shared by every evaluation this state
  /// drives (exact_eval misses, full evaluate() resyncs, corner signoff).
  /// Built once in the constructor (or borrowed; see the ctor); the tree
  /// and congestion map are fixed for the lifetime of a search, so it is
  /// never invalidated here.
  const extract::GeometryCache& geometry_cache() const { return *geometry_; }

  /// Copies every fully warm memo row (and its per-net context) into
  /// `out`, replacing its contents. Rows whose context stamp moved since
  /// they were filled are skipped. Cheap: scalars only.
  void export_memo(MemoSnapshot& out) const;

  /// Adopts rows from a snapshot taken by a search over the same
  /// (tree, nets, tech) shape: a row lands only if the snapshot's recorded
  /// driver resistance is bitwise equal to this state's current one and
  /// the row here is still cold. Returns the number of rows adopted.
  /// Value-neutral by the exact_eval memo contract.
  int import_memo(const MemoSnapshot& in);

  /// exact_eval cache counters since construction.
  std::int64_t exact_cache_hits() const { return cache_hits_; }
  std::int64_t exact_cache_misses() const { return cache_misses_; }
  double exact_cache_hit_rate() const {
    return obs::safe_ratio(cache_hits_, cache_hits_ + cache_misses_);
  }

  /// Pushes the delta of hit/miss counts since the last flush into the
  /// global registry (ndr.exact_cache.{hits,misses}). exact_eval itself
  /// stays registry-free — it is the hottest path in the search — so the
  /// counts reach the registry in batches: rebuild(), the destructor, and
  /// flow ends all flush. Idempotent between new evals.
  void flush_metrics() const;

  ~AssignmentState() { flush_metrics(); }

  const netlist::ClockTree& tree() const { return *tree_; }
  const netlist::Design& design() const { return *design_; }
  const tech::Technology& tech() const { return *tech_; }
  const netlist::NetList& nets() const { return *nets_; }
  const timing::AnalysisOptions& analysis() const { return analysis_; }

  /// Design sinks downstream of a net / nets on a sink's source path.
  const std::vector<int>& sinks_under(int net_id) const {
    return sinks_under_[net_id];
  }
  const std::vector<int>& nets_on_path(int sink) const {
    return nets_on_path_[sink];
  }
  const std::vector<geom::Path>& net_paths(int net_id) const {
    return nets_state_[net_id].paths;
  }

  // Accumulator accessors (tests pin these against a fresh rebuild()).
  double sink_latency(int sink) const { return sink_latency_[sink]; }
  double sink_var(int sink) const { return sink_var_[sink]; }
  double sink_xtalk(int sink) const { return sink_xtalk_[sink]; }
  double latency_sum() const { return latency_sum_; }
  double net_sigma(int net_id) const { return nets_state_[net_id].sigma; }
  double net_xtalk_of(int net_id) const { return nets_state_[net_id].xtalk; }
  double net_wire_delay(int net_id) const {
    return nets_state_[net_id].wire_delay;
  }

  /// Same-shape net groups shared by warm_rows and the predictor.
  const extract::NetShapeBuckets& shape_buckets() const {
    return shape_buckets_;
  }

 private:
  struct NetState {
    NetSummary summary;
    double cap = 0.0;
    double sigma = 0.0;
    double xtalk = 0.0;
    double wire_delay = 0.0;
    double base_slew = 0.0;
    std::vector<geom::Path> paths;
  };

  const netlist::ClockTree* tree_;
  const netlist::Design* design_;
  const tech::Technology* tech_;
  const netlist::NetList* nets_;
  timing::AnalysisOptions analysis_;
  /// Owned when built here, null when borrowing; `geometry_` always points
  /// at the cache in use.
  std::unique_ptr<extract::GeometryCache> geometry_own_;
  const extract::GeometryCache* geometry_ = nullptr;
  timing::DeltaTimer delta_;  ///< incremental arrival/slew mirror.
  extract::NetShapeBuckets shape_buckets_;
  extract::NetParasitics move_par_;  ///< warm scratch for apply_move.

  /// Memo slot for exact_eval; valid iff gen == ctx_gen_[net] (gen 0 is
  /// never valid: context stamps start at 1 and only grow).
  struct ExactCacheEntry {
    std::uint64_t gen = 0;
    NetExact exact;  ///< scalars only; par is cleared before caching.
  };

  RuleAssignment assignment_;
  std::vector<NetState> nets_state_;
  int n_rules_ = 0;
  mutable std::vector<ExactCacheEntry> exact_cache_;  ///< [net][rule] flat.
  std::vector<std::uint64_t> ctx_gen_;  ///< per-net exact-eval context stamp.
  mutable std::int64_t cache_hits_ = 0;
  mutable std::int64_t cache_misses_ = 0;
  mutable std::int64_t flushed_hits_ = 0;    ///< already in the registry.
  mutable std::int64_t flushed_misses_ = 0;
  std::vector<std::vector<int>> sinks_under_;
  std::vector<std::vector<int>> nets_on_path_;
  std::vector<double> sink_latency_;
  std::vector<double> sink_var_;
  std::vector<double> sink_xtalk_;
  std::vector<double> win_lo_;  ///< raw windows (no margin).
  std::vector<double> win_hi_;
  /// Per-net clock-domain rate factors (clock_domains.hpp), all exactly
  /// 1.0 when domains are disabled: `net_weight_` scales switched cap in
  /// the search energy; `net_em_scale_` post-scales every EM density the
  /// exact evaluators produce (applied at memo-fill time so cached rows,
  /// check_move bounds, and analyze_em agree bitwise).
  std::vector<double> net_weight_;
  std::vector<double> net_em_scale_;
  double latency_sum_ = 0.0;
  double total_cap_ = 0.0;
  double total_energy_ = 0.0;  ///< sum of net_weight_[i] * cap_i.
  netlist::RoutingUsage usage_;
};

}  // namespace sndr::ndr
