#include "ndr/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sndr::ndr {

std::vector<double> net_feature_vector(const NetSummary& s) {
  // Scaled to O(1) magnitudes: lengths in mm, caps in tens of fF,
  // resistance in kohm. Interaction terms capture the R*C structure of the
  // underlying physics (delay ~ Rdrv*C + r*L*C terms).
  const double len = s.wirelength * 1e-3;
  const double occ = s.occ_length * 1e-3;
  const double maxp = s.max_path * 1e-3;
  const double lcap = s.load_cap * 1e14;
  const double rdrv = s.driver_res * 1e-3;
  const double nloads = static_cast<double>(s.load_count);
  return {
      len,
      occ,
      maxp,
      lcap,
      rdrv,
      nloads,
      len * len,
      maxp * maxp,
      rdrv * lcap,
      rdrv * len,
      maxp * len,
      occ * maxp,
  };
}

RuleImpactPredictor RuleImpactPredictor::train(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const timing::AnalysisOptions& options, int max_samples,
    double holdout_frac, const extract::GeometryCache* geometry) {
  SNDR_TRACE_SPAN("predictor_train");
  RuleImpactPredictor pred;
  const int n_rules = tech.rules.size();
  const double freq = design.constraints.clock_freq;

  // Stratified sample: nets are depth-ordered by construction, so a strided
  // pick covers every level of the hierarchy.
  std::vector<int> sample_ids;
  const int n_nets = nets.size();
  const int stride = std::max(1, n_nets / std::max(1, max_samples));
  for (int i = 0; i < n_nets; i += stride) sample_ids.push_back(i);

  // Deterministic Fisher-Yates shuffle so the train/holdout split is not
  // depth-biased (sample_ids start depth-ordered).
  std::uint64_t state = 0x853c49e6748fea9bULL;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (std::size_t i = sample_ids.size(); i > 1; --i) {
    std::swap(sample_ids[i - 1], sample_ids[next() % i]);
  }

  const int n_holdout = std::max(
      1, static_cast<int>(std::floor(sample_ids.size() * holdout_frac)));
  const int n_train = std::max(
      1, static_cast<int>(sample_ids.size()) - n_holdout);

  // Features are rule-independent: compute once per sampled net. Each
  // sample fills its own slot, so the loop parallelizes deterministically.
  std::vector<std::vector<double>> features(sample_ids.size());
  std::vector<NetSummary> summaries(sample_ids.size());
  common::parallel_for(
      static_cast<std::int64_t>(sample_ids.size()), /*grain=*/16,
      /*est_us_per_item=*/1.0, [&](std::int64_t i) {
        summaries[i] = summarize_net(tree, design, tech,
                                     nets[sample_ids[i]], options);
        features[i] = net_feature_vector(summaries[i]);
      });

  pred.models_.resize(n_rules);
  pred.report_.quality.resize(n_rules);
  pred.report_.train_samples = n_train;
  pred.report_.holdout_samples =
      static_cast<int>(sample_ids.size()) - n_train;
  SNDR_COUNTER_ADD("predictor.train_samples", pred.report_.train_samples);
  SNDR_COUNTER_ADD("predictor.holdout_samples",
                   pred.report_.holdout_samples);

  // Exact labels for every (sample, rule): net-outer, so one batched pass
  // per net scores ALL rules from the same geometry — the dominant training
  // cost drops from R evaluations per sample to one. Per (sample, rule) the
  // labels are bit-identical to the historical rule-outer scalar loop
  // (batched kernels replay the scalar op order per lane), so the fitted
  // models and the quality report are identical too.
  std::vector<std::vector<std::array<double, 4>>> labels(
      static_cast<std::size_t>(n_rules));
  for (auto& l : labels) l.resize(sample_ids.size());
  if (geometry != nullptr) {
    // Label from pre-built geometry with CROSS-NET batches: sample slots
    // are grouped by geometry shape so one kernel call labels several
    // same-shaped nets at once (lanes = nets × rules) instead of one net's
    // rules. Labels stay bit-identical to the per-net path — the batch
    // replays each lane's scalar op order — so the fitted models and the
    // quality report are unchanged; only the lane occupancy improves.
    const extract::NetShapeBuckets buckets =
        extract::bucket_nets_by_shape(*geometry);
    const int max_nets = std::max(1, 32 / std::max(1, n_rules));
    std::vector<std::vector<int>> batches;  // of sample slots.
    {
      std::vector<std::vector<int>> per_group(buckets.groups.size());
      for (std::size_t i = 0; i < sample_ids.size(); ++i) {
        per_group[buckets.group_of[sample_ids[i]]].push_back(
            static_cast<int>(i));
      }
      for (const std::vector<int>& group : per_group) {
        for (std::size_t at = 0; at < group.size();
             at += static_cast<std::size_t>(max_nets)) {
          const std::size_t end =
              std::min(group.size(), at + static_cast<std::size_t>(max_nets));
          batches.emplace_back(group.begin() + at, group.begin() + end);
        }
      }
    }
    common::parallel_for(
        static_cast<std::int64_t>(batches.size()), /*grain=*/1,
        [&](std::int64_t b) {
          const std::vector<int>& slots = batches[static_cast<std::size_t>(b)];
          thread_local common::Arena arena;
          thread_local std::vector<const extract::NetGeometry*> geoms;
          thread_local std::vector<double> dres;
          thread_local std::vector<NetExact> out;
          geoms.resize(slots.size());
          dres.resize(slots.size());
          out.resize(slots.size() * static_cast<std::size_t>(n_rules));
          std::vector<extract::GeometryCache::Pinned> pins;
          pins.reserve(slots.size());
          for (std::size_t k = 0; k < slots.size(); ++k) {
            pins.push_back(geometry->pinned(sample_ids[slots[k]]));
            geoms[k] = pins.back().get();
            dres[k] = summaries[slots[k]].driver_res;
          }
          evaluate_nets_exact_all_rules(geoms.data(), dres.data(),
                                        static_cast<int>(slots.size()), tech,
                                        freq, arena, out.data());
          for (std::size_t k = 0; k < slots.size(); ++k) {
            for (int r = 0; r < n_rules; ++r) {
              const NetExact& exact =
                  out[k * static_cast<std::size_t>(n_rules) +
                      static_cast<std::size_t>(r)];
              labels[r][slots[k]] = {exact.step_slew_worst, exact.sigma_worst,
                                     exact.xtalk_worst,
                                     exact.wire_delay_worst};
            }
          }
        });
  } else {
    common::parallel_for(
        static_cast<std::int64_t>(sample_ids.size()), /*grain=*/4,
        /*est_us_per_item=*/10.0, [&](std::int64_t i) {
          thread_local common::Arena arena;
          thread_local std::vector<NetExact> row;
          row.resize(static_cast<std::size_t>(n_rules));
          // One fresh geometry walk per sample (instead of one per
          // (sample, rule) — the walk is rule-independent).
          const extract::NetGeometry geom = extract::build_net_geometry(
              tree, design, nets[sample_ids[i]]);
          evaluate_net_exact_all_rules(geom, tech, summaries[i].driver_res,
                                       freq, arena, row.data());
          for (int r = 0; r < n_rules; ++r) {
            const NetExact& exact = row[static_cast<std::size_t>(r)];
            labels[r][i] = {exact.step_slew_worst, exact.sigma_worst,
                            exact.xtalk_worst, exact.wire_delay_worst};
          }
        });
  }

  for (int r = 0; r < n_rules; ++r) {
    for (int m = 0; m < 4; ++m) {
      std::vector<std::vector<double>> x_train(features.begin(),
                                               features.begin() + n_train);
      std::vector<double> y_train;
      y_train.reserve(n_train);
      for (int i = 0; i < n_train; ++i) y_train.push_back(labels[r][i][m]);
      pred.models_[r][m].fit(x_train, y_train);

      // Holdout quality.
      std::vector<double> truth;
      std::vector<double> est;
      for (std::size_t i = n_train; i < sample_ids.size(); ++i) {
        truth.push_back(labels[r][i][m]);
        est.push_back(pred.models_[r][m].predict(features[i]));
      }
      ModelQuality& q = pred.report_.quality[r][m];
      q.mae = mean_abs_error(truth, est);
      q.r2 = r_squared(truth, est);
      q.rank_corr = spearman_rank_correlation(truth, est);
    }
  }
  return pred;
}

NetImpact RuleImpactPredictor::predict(const NetSummary& s, int rule) const {
  const std::vector<double> x = net_feature_vector(s);
  const std::array<RidgeRegression, 4>& m = models_.at(rule);
  NetImpact out;
  out.step_slew = std::max(0.0, m[0].predict(x));
  out.sigma = std::max(0.0, m[1].predict(x));
  out.xtalk = std::max(0.0, m[2].predict(x));
  out.delay = std::max(0.0, m[3].predict(x));
  return out;
}

}  // namespace sndr::ndr
