#include "ndr/assignment_state.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/parallel.hpp"
#include "route/congestion_route.hpp"
#include "timing/delay_metrics.hpp"

namespace sndr::ndr {

AssignmentState::AssignmentState(const netlist::ClockTree& tree,
                                 const netlist::Design& design,
                                 const tech::Technology& tech,
                                 const netlist::NetList& nets,
                                 const timing::AnalysisOptions& analysis,
                                 std::size_t geometry_budget_bytes,
                                 const extract::GeometryCache* shared_geometry)
    : tree_(&tree),
      design_(&design),
      tech_(&tech),
      nets_(&nets),
      analysis_(analysis),
      geometry_own_(shared_geometry
                        ? nullptr
                        : std::make_unique<extract::GeometryCache>(
                              tree, design, nets, geometry_budget_bytes,
                              extract::ExtractOptions{})),
      geometry_(shared_geometry ? shared_geometry : geometry_own_.get()),
      delta_(tree, design, tech, nets, analysis),
      usage_(&design.congestion) {
  const int n_nets = nets.size();
  const int n_sinks = static_cast<int>(design.sinks.size());
  sinks_under_.assign(n_nets, {});
  nets_on_path_.assign(n_sinks, {});

  for (int v = 0; v < tree.size(); ++v) {
    const netlist::TreeNode& n = tree.node(v);
    if (n.kind != netlist::NodeKind::kSink) continue;
    int node = v;
    int last_net = -1;
    while (node >= 0) {
      const int net = nets.net_of_edge[node];
      if (net >= 0 && net != last_net) {
        sinks_under_[net].push_back(n.sink);
        nets_on_path_[n.sink].push_back(net);
        last_net = net;
      }
      node = tree.node(node).parent;
    }
  }

  win_lo_.resize(n_sinks);
  win_hi_.resize(n_sinks);
  for (int s = 0; s < n_sinks; ++s) {
    if (design.useful_skew.enabled()) {
      win_lo_[s] = design.useful_skew.lo[s];
      win_hi_[s] = design.useful_skew.hi[s];
    } else {
      win_lo_[s] = -0.5 * design.constraints.max_skew;
      win_hi_[s] = 0.5 * design.constraints.max_skew;
    }
  }

  n_rules_ = tech.rules.size();
  exact_cache_.resize(static_cast<std::size_t>(n_nets) *
                      static_cast<std::size_t>(n_rules_));
  ctx_gen_.assign(n_nets, 1);

  net_weight_.assign(n_nets, 1.0);
  net_em_scale_.assign(n_nets, 1.0);
  for (const netlist::Net& net : nets.nets) {
    net_weight_[net.id] = design.clock_domains.node_toggle_weight(net.driver);
    net_em_scale_[net.id] = design.clock_domains.node_em_scale(net.driver);
  }

  nets_state_.resize(n_nets);
  for (const netlist::Net& net : nets.nets) {
    NetState& st = nets_state_[net.id];
    st.summary = summarize_net(tree, design, tech, net, analysis_);
    const netlist::TreeNode& drv = tree.node(net.driver);
    st.base_slew = drv.kind == netlist::NodeKind::kSource
                       ? analysis_.source_slew
                       : 0.4 * tech.buffers[drv.cell].intrinsic_delay;
    st.paths.reserve(net.wires.size());
    for (const int v : net.wires) {
      const netlist::TreeNode& wn = tree.node(v);
      if (wn.path.size() >= 2) {
        st.paths.push_back(wn.path);
      } else {
        st.paths.push_back({tree.loc(wn.parent), wn.loc});
      }
    }
  }

  shape_buckets_ = extract::bucket_nets_by_shape(*geometry_);
  SNDR_GAUGE_SET("extract.net_batch.buckets",
                 static_cast<double>(shape_buckets_.groups.size()));
}

void AssignmentState::flush_metrics() const {
  const std::int64_t d_hits = cache_hits_ - flushed_hits_;
  const std::int64_t d_misses = cache_misses_ - flushed_misses_;
  if (d_hits > 0) SNDR_COUNTER_ADD("ndr.exact_cache.hits", d_hits);
  if (d_misses > 0) SNDR_COUNTER_ADD("ndr.exact_cache.misses", d_misses);
  flushed_hits_ = cache_hits_;
  flushed_misses_ = cache_misses_;
}

void AssignmentState::rebuild(const RuleAssignment& assignment,
                              const FlowEvaluation& ev) {
  flush_metrics();
#ifndef NDEBUG
  // Delta-vs-reference contract: when the caller resynchronizes against a
  // full evaluation of the assignment the incremental state already tracks,
  // every delta-maintained accumulator must agree BITWISE with the fresh
  // evaluation. Rebuilds under a different assignment (optimizer repair /
  // full-STA scoring pass their own) are legitimately divergent and skip
  // the check.
  if (delta_.synced() && assignment == assignment_) {
    assert(sink_latency_ == ev.timing.sink_arrival);
    assert(delta_.sink_arrival() == ev.timing.sink_arrival);
    assert(delta_.node_arrival() == ev.timing.node_arrival);
    assert(delta_.node_slew() == ev.timing.node_slew);
    assert(latency_sum_ == std::accumulate(ev.timing.sink_arrival.begin(),
                                           ev.timing.sink_arrival.end(),
                                           0.0));
    double cap_check = 0.0;
    for (const netlist::Net& net : nets_->nets) {
      assert(nets_state_[net.id].cap == ev.power.net_switched_cap[net.id]);
      assert(nets_state_[net.id].sigma == ev.variation.net_sigma[net.id]);
      assert(nets_state_[net.id].xtalk == ev.variation.net_xtalk[net.id]);
      cap_check += ev.power.net_switched_cap[net.id];
    }
    assert(total_cap_ == cap_check);
    for (int s = 0; s < static_cast<int>(design_->sinks.size()); ++s) {
      double var = 0.0;
      double xt = 0.0;
      for (const int net : nets_on_path_[s]) {
        var += ev.variation.net_sigma[net] * ev.variation.net_sigma[net];
        xt += ev.variation.net_xtalk[net];
      }
      assert(sink_var_[s] == var);
      assert(sink_xtalk_[s] == xt);
    }
  }
#endif
  assignment_ = assignment;
  const int n_sinks = static_cast<int>(design_->sinks.size());
  sink_latency_ = ev.timing.sink_arrival;
  latency_sum_ = std::accumulate(sink_latency_.begin(), sink_latency_.end(),
                                 0.0);
  sink_var_.assign(n_sinks, 0.0);
  sink_xtalk_.assign(n_sinks, 0.0);
  for (int s = 0; s < n_sinks; ++s) {
    for (const int net : nets_on_path_[s]) {
      sink_var_[s] +=
          ev.variation.net_sigma[net] * ev.variation.net_sigma[net];
      sink_xtalk_[s] += ev.variation.net_xtalk[net];
    }
  }

  // Reference resync of the delta-timing mirror: re-derives every net's
  // per-load wire delay / step slew and the arrival/slew arrays from the
  // fresh evaluation (the O(tree) moment work that previously lived in the
  // loop below).
  delta_.rebuild(ev.parasitics, ev.timing);

  total_cap_ = 0.0;
  total_energy_ = 0.0;
  for (const netlist::Net& net : nets_->nets) {
    NetState& st = nets_state_[net.id];
    st.cap = ev.power.net_switched_cap[net.id];
    total_cap_ += st.cap;
    total_energy_ += net_weight_[net.id] * st.cap;
    st.sigma = ev.variation.net_sigma[net.id];
    st.xtalk = ev.variation.net_xtalk[net.id];
    const double driver_res =
        timing::net_driver_res(*tree_, *tech_, net, analysis_);
    // The exact_eval memo is keyed on the net's electrical context; a
    // resync only invalidates a net's cached row when that context really
    // changed (exact results are otherwise independent of the assignment).
    if (driver_res != st.summary.driver_res) {
      st.summary.driver_res = driver_res;
      ++ctx_gen_[net.id];
    }
    st.wire_delay = delta_.net_wire_delay_worst(net.id);
  }

  usage_ = route::compute_usage(*tree_, *nets_, assignment_, *tech_,
                                design_->congestion);
}

double AssignmentState::slew_at_loads(int net_id, double step_slew) const {
  return timing::peri_slew(nets_state_[net_id].base_slew, step_slew);
}

bool AssignmentState::check_move(int net_id, int rule_idx,
                                 const NetImpact& impact,
                                 const MoveMargins& margins) const {
  const netlist::ClockConstraints& c = design_->constraints;
  const NetState& st = nets_state_[net_id];
  const tech::RoutingRule& rule = tech_->rules[rule_idx];

  if (slew_at_loads(net_id, impact.step_slew) >
      c.max_slew * (1.0 - margins.slew)) {
    return false;
  }
  if (net_em_bound(st.summary, *tech_, rule, c.clock_freq) *
          net_em_scale_[net_id] >
      tech_->clock_layer.em_jmax * (1.0 - margins.em)) {
    return false;
  }
  const double width_frac = tech_->clock_layer.width_frac();
  const double d_pitch =
      rule.pitch_mult(width_frac) -
      tech_->rules[assignment_[net_id]].pitch_mult(width_frac);
  if (d_pitch > 0.0) {
    for (const geom::Path& p : st.paths) {
      if (!usage_.fits(p, d_pitch)) return false;
    }
  }

  const double d_delay = impact.delay - st.wire_delay;
  const std::vector<int>& under = sinks_under_[net_id];
  const int n_sinks = static_cast<int>(design_->sinks.size());
  const double new_mean =
      (latency_sum_ + d_delay * static_cast<double>(under.size())) /
      std::max(1, n_sinks);
  const double d_var = impact.sigma * impact.sigma - st.sigma * st.sigma;
  const double d_xtalk = impact.xtalk - st.xtalk;
  const double max_unc = c.max_uncertainty * (1.0 - margins.uncertainty);
  const double win_scale = 1.0 - margins.skew;
  for (const int s : under) {
    const double off = sink_latency_[s] + d_delay - new_mean;
    if (off < win_lo_[s] * win_scale || off > win_hi_[s] * win_scale) {
      return false;
    }
    const double var = std::max(0.0, sink_var_[s] + d_var);
    const double unc = 3.0 * std::sqrt(var) + sink_xtalk_[s] + d_xtalk;
    if (unc > max_unc) return false;
  }
  return true;
}

void AssignmentState::apply_move(int net_id, int rule_idx,
                                 const NetExact& exact) {
  NetState& st = nets_state_[net_id];
  const double width_frac = tech_->clock_layer.width_frac();
  const double d_pitch =
      tech_->rules[rule_idx].pitch_mult(width_frac) -
      tech_->rules[assignment_[net_id]].pitch_mult(width_frac);
  if (d_pitch != 0.0) {
    for (const geom::Path& p : st.paths) usage_.add(p, d_pitch);
  }

  // Exact incremental timing: re-materialize the net's parasitics under
  // the new rule (O(pieces), no geometry walk) and replay the analyze
  // recurrence over the net's descendant subtree. Only the sinks under
  // this net can change arrival.
  {
    const extract::GeometryCache::Pinned pin = geometry_->pinned(net_id);
    extract::materialize(*pin, *tech_, tech_->rules[rule_idx], move_par_);
  }
  delta_.apply_net_change(net_id, move_par_);

  // A move changes no input of evaluate_net_exact — the rule is part of
  // the memo key and coupling reads the static occupancy field, not
  // neighbor rules — so the net's cached row stays valid. If moves ever
  // start mutating per-net electrical context, advance ctx_gen_[net_id]
  // here (the rebuild() driver_res check is the model to follow). The
  // caller's `exact` is by contract the net's evaluation under the new
  // rule, so memoize it in case it was produced out-of-band.
  ExactCacheEntry& e =
      exact_cache_[static_cast<std::size_t>(net_id) * n_rules_ + rule_idx];
  e.exact = exact;
  e.exact.par = extract::NetParasitics{};
  e.gen = ctx_gen_[net_id];

  assignment_[net_id] = rule_idx;
  st.cap = exact.cap_switched;
  st.sigma = exact.sigma_worst;
  st.xtalk = exact.xtalk_worst;
  st.wire_delay = delta_.net_wire_delay_worst(net_id);

  // Re-derive the accumulators of the affected sinks as ABSOLUTE re-sums in
  // rebuild()'s exact floating-point order — never accumulated +=deltas —
  // so the incremental state stays bitwise equal to a fresh rebuild.
  const std::vector<double>& arrival = delta_.sink_arrival();
  for (const int s : sinks_under_[net_id]) {
    sink_latency_[s] = arrival[s];
    double var = 0.0;
    double xt = 0.0;
    for (const int net : nets_on_path_[s]) {
      const NetState& ns = nets_state_[net];
      var += ns.sigma * ns.sigma;
      xt += ns.xtalk;
    }
    sink_var_[s] = var;
    sink_xtalk_[s] = xt;
  }
  latency_sum_ = std::accumulate(sink_latency_.begin(), sink_latency_.end(),
                                 0.0);
  total_cap_ = 0.0;
  total_energy_ = 0.0;
  for (const netlist::Net& net : nets_->nets) {
    total_cap_ += nets_state_[net.id].cap;
    total_energy_ += net_weight_[net.id] * nets_state_[net.id].cap;
  }
}

void AssignmentState::warm_rows(const std::vector<int>& net_ids) const {
  // A row is warm iff EVERY rule entry carries the current context stamp
  // (exact_eval fills whole rows, but apply_move can memoize one entry of
  // an otherwise-cold row out-of-band).
  std::vector<int> cold;
  cold.reserve(net_ids.size());
  for (const int id : net_ids) {
    const std::uint64_t gen = ctx_gen_[id];
    for (int r = 0; r < n_rules_; ++r) {
      if (exact_cache_[static_cast<std::size_t>(id) * n_rules_ + r].gen !=
          gen) {
        cold.push_back(id);
        break;
      }
    }
  }
  std::sort(cold.begin(), cold.end());
  cold.erase(std::unique(cold.begin(), cold.end()), cold.end());
  if (cold.empty()) return;

  // Deterministic batch plan: group cold nets by geometry shape, then chunk
  // each group so one kernel call carries ~32 lanes (nets × rules). The
  // plan depends only on the cold set, never on the thread count.
  const int max_nets = std::max(1, 32 / std::max(1, n_rules_));
  std::vector<std::vector<int>> batches;
  {
    std::vector<std::vector<int>> per_group(shape_buckets_.groups.size());
    for (const int id : cold) {
      per_group[shape_buckets_.group_of[id]].push_back(id);
    }
    for (const std::vector<int>& group : per_group) {
      for (std::size_t at = 0; at < group.size();
           at += static_cast<std::size_t>(max_nets)) {
        const std::size_t end =
            std::min(group.size(), at + static_cast<std::size_t>(max_nets));
        batches.emplace_back(group.begin() + at, group.begin() + end);
      }
    }
  }

  // Each batch fills the memo rows of disjoint nets, so workers never
  // touch the same cache slot; values are bitwise equal to the lazy
  // exact_eval path, making the warm-up invisible to every consumer.
  common::parallel_for(
      static_cast<std::int64_t>(batches.size()), /*grain=*/1,
      [&](std::int64_t b) {
        const std::vector<int>& ids = batches[static_cast<std::size_t>(b)];
        thread_local common::Arena arena;
        thread_local std::vector<const extract::NetGeometry*> geoms;
        thread_local std::vector<double> dres;
        thread_local std::vector<NetExact> out;
        geoms.resize(ids.size());
        dres.resize(ids.size());
        out.resize(ids.size() * static_cast<std::size_t>(n_rules_));
        // The whole batch stays pinned for the kernel call (budgeted
        // geometry caches evict only unpinned entries).
        std::vector<extract::GeometryCache::Pinned> pins;
        pins.reserve(ids.size());
        for (std::size_t i = 0; i < ids.size(); ++i) {
          pins.push_back(geometry_->pinned(ids[i]));
          geoms[i] = pins.back().get();
          dres[i] = nets_state_[ids[i]].summary.driver_res;
        }
        evaluate_nets_exact_all_rules(geoms.data(), dres.data(),
                                      static_cast<int>(ids.size()), *tech_,
                                      design_->constraints.clock_freq, arena,
                                      out.data());
        if (geometry_->budgeted()) arena.shrink_to(geometry_->budget_bytes());
        for (std::size_t i = 0; i < ids.size(); ++i) {
          const int id = ids[i];
          const std::uint64_t gen = ctx_gen_[id];
          for (int r = 0; r < n_rules_; ++r) {
            ExactCacheEntry& er =
                exact_cache_[static_cast<std::size_t>(id) * n_rules_ + r];
            er.exact = out[i * static_cast<std::size_t>(n_rules_) +
                           static_cast<std::size_t>(r)];
            // Clock-domain RMS scaling, applied at memo-fill time (see
            // exact_eval); x * 1.0 keeps the neutral case bit-identical.
            er.exact.em_peak *= net_em_scale_[id];
            er.gen = gen;
          }
        }
      });

  cache_misses_ += static_cast<std::int64_t>(cold.size());
  SNDR_COUNTER_ADD("extract.net_batch.lanes",
                   static_cast<std::int64_t>(cold.size()) * n_rules_);
}

void AssignmentState::warm_all_rows() const {
  std::vector<int> all(static_cast<std::size_t>(nets_->size()));
  std::iota(all.begin(), all.end(), 0);
  warm_rows(all);
}

void AssignmentState::export_memo(MemoSnapshot& out) const {
  const int n_nets = nets_->size();
  out.n_rules = n_rules_;
  out.driver_res.assign(n_nets, 0.0);
  out.row_warm.assign(n_nets, 0);
  out.rows.assign(static_cast<std::size_t>(n_nets) *
                      static_cast<std::size_t>(n_rules_),
                  NetExact{});
  for (int id = 0; id < n_nets; ++id) {
    out.driver_res[id] = nets_state_[id].summary.driver_res;
    const std::uint64_t gen = ctx_gen_[id];
    bool warm = n_rules_ > 0;
    for (int r = 0; r < n_rules_; ++r) {
      if (exact_cache_[static_cast<std::size_t>(id) * n_rules_ + r].gen !=
          gen) {
        warm = false;
        break;
      }
    }
    if (!warm) continue;
    out.row_warm[id] = 1;
    for (int r = 0; r < n_rules_; ++r) {
      out.rows[static_cast<std::size_t>(id) * n_rules_ + r] =
          exact_cache_[static_cast<std::size_t>(id) * n_rules_ + r].exact;
    }
  }
}

int AssignmentState::import_memo(const MemoSnapshot& in) {
  const int n_nets = nets_->size();
  if (in.n_rules != n_rules_ ||
      in.driver_res.size() != static_cast<std::size_t>(n_nets)) {
    return 0;  // different search shape; nothing transplantable.
  }
  int adopted = 0;
  for (int id = 0; id < n_nets; ++id) {
    if (!in.row_warm[id]) continue;
    // Context guard: the donated row was computed under a specific driver
    // resistance; adopt only on bitwise match, so the row equals what a
    // cold eval here would produce (value-neutral).
    if (in.driver_res[id] != nets_state_[id].summary.driver_res) continue;
    const std::uint64_t gen = ctx_gen_[id];
    bool already_warm = true;
    for (int r = 0; r < n_rules_; ++r) {
      if (exact_cache_[static_cast<std::size_t>(id) * n_rules_ + r].gen !=
          gen) {
        already_warm = false;
        break;
      }
    }
    if (already_warm) continue;
    for (int r = 0; r < n_rules_; ++r) {
      ExactCacheEntry& er =
          exact_cache_[static_cast<std::size_t>(id) * n_rules_ + r];
      er.exact = in.rows[static_cast<std::size_t>(id) * n_rules_ + r];
      er.gen = gen;
    }
    ++adopted;
  }
  if (adopted > 0) {
    SNDR_COUNTER_ADD("ndr.exact_cache.transplants", adopted);
  }
  return adopted;
}

NetExact AssignmentState::exact_eval(int net_id, int rule_idx) const {
  ExactCacheEntry& e =
      exact_cache_[static_cast<std::size_t>(net_id) * n_rules_ + rule_idx];
  if (e.gen == ctx_gen_[net_id]) {
    ++cache_hits_;
    return e.exact;
  }
  ++cache_misses_;
  // Miss path: the batched kernels score EVERY rule of the set in one
  // fused pass over the cached geometry (cheaper than two scalar evals),
  // so a miss warms the whole (net, ×rules) memo row — every later rule
  // query on this net under the same context is a hit. One miss is
  // counted per row fill; per-rule results are bit-identical to the
  // scalar evaluate_net_exact, which tests/batch_kernel_test.cpp pins.
  thread_local common::Arena arena;
  thread_local std::vector<NetExact> row;
  row.resize(static_cast<std::size_t>(n_rules_));
  {
    const extract::GeometryCache::Pinned pin = geometry_->pinned(net_id);
    evaluate_net_exact_all_rules(*pin, *tech_,
                                 nets_state_[net_id].summary.driver_res,
                                 design_->constraints.clock_freq, arena,
                                 row.data());
  }
  if (geometry_->budgeted()) arena.shrink_to(geometry_->budget_bytes());
  const std::uint64_t gen = ctx_gen_[net_id];
  for (int r = 0; r < n_rules_; ++r) {
    ExactCacheEntry& er =
        exact_cache_[static_cast<std::size_t>(net_id) * n_rules_ + r];
    er.exact = row[static_cast<std::size_t>(r)];
    // The kernels evaluate EM at the root clock rate; the net's domain
    // scale is applied here, once, as the row is memoized — so every
    // consumer (greedy feasibility, annealer vetoes, repair) sees the
    // same scaled density analyze_em reports. Neutral scale == 1.0 keeps
    // the single-domain world bit-identical.
    er.exact.em_peak *= net_em_scale_[net_id];
    er.gen = gen;
  }
  return e.exact;
}

}  // namespace sndr::ndr
