// Small dense ridge regression, self-contained (no BLAS/LAPACK).
//
// Inputs are standardized feature-wise before fitting so one lambda works
// across heterogeneous feature scales; the solve is normal equations with a
// Cholesky factorization, which is exact and fast at the dimensionalities
// used here (~a dozen features, hundreds of samples).
#pragma once

#include <vector>

namespace sndr::ndr {

class RidgeRegression {
 public:
  /// Fits y ~ X. Throws std::invalid_argument on shape errors.
  void fit(const std::vector<std::vector<double>>& X,
           const std::vector<double>& y, double lambda = 1e-3);

  double predict(const std::vector<double>& x) const;

  bool trained() const { return !weights_.empty(); }
  int dim() const { return static_cast<int>(weights_.size()); }

 private:
  std::vector<double> weights_;  ///< in standardized feature space.
  std::vector<double> mean_;
  std::vector<double> scale_;
  double intercept_ = 0.0;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky, in place.
/// A is row-major n x n. Throws std::runtime_error if not SPD.
std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              int n);

// Model-quality metrics (used by the Table IV bench).
double mean_abs_error(const std::vector<double>& truth,
                      const std::vector<double>& pred);
double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& pred);
/// Spearman rank correlation; the optimizer only needs correct *ordering*
/// of candidates, so rank correlation is the metric that matters most.
double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b);

}  // namespace sndr::ndr
