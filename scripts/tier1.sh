#!/usr/bin/env bash
# Tier-1 gate: plain build + full test suite, then a ThreadSanitizer build
# running the parallel-subsystem tests plus the concurrent two-session flow
# test, then an AddressSanitizer build running the extraction tests (the
# zero-alloc scratch kernels and the geometry cache lean hard on buffer
# reuse — ASan guards their bounds; the scale smoke adds a 10k-net
# generated tree and heavy LRU eviction under a byte budget), then an
# UndefinedBehaviorSanitizer
# build running the flow/io layers (parsers and typed error boundaries).
# Run from anywhere inside the repo.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"

echo "== tier1: plain build + ctest =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" -j "$jobs" --output-on-failure

echo "== tier1: ThreadSanitizer build + parallel/obs/flow tests =="
cmake -B "$repo/build-tsan" -S "$repo" -DSNDR_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs" --target parallel_test \
  --target obs_test --target manifest_golden_test --target flow_test \
  --target delta_timing_test --target net_batch_test \
  --target scenario_fuzz_test --target serve_test --target dse_test
"$repo/build-tsan/tests/parallel_test"
"$repo/build-tsan/tests/obs_test"
"$repo/build-tsan/tests/manifest_golden_test"
# Pins scope isolation under real concurrency (two sessions, two threads).
"$repo/build-tsan/tests/flow_test"
# Serve smoke: concurrent submits through the worker pool + shared cache,
# a mid-anneal cancel unwinding across threads, and both shutdown modes —
# the whole service locking story under TSan.
"$repo/build-tsan/tests/serve_test"
# DSE sweep: the 8-thread-vs-1-thread frontier identity and the dse job
# type through the server's worker pool — cross-session reuse (shared
# geometry, memo transplant, donated prep) under TSan.
"$repo/build-tsan/tests/dse_test"
# Parallel warm_rows fills disjoint memo rows; churn pins 1-vs-8 threads.
"$repo/build-tsan/tests/delta_timing_test"
"$repo/build-tsan/tests/net_batch_test"
# Property fuzz at reduced depth: every scenario runs the 1-vs-8-thread
# bitwise contracts, so a handful of scenarios under TSan covers the
# multi-domain evaluate/optimize/anneal paths (SNDR_FUZZ_ITERS dials it;
# a failure prints the scenario seed for SNDR_FUZZ_SEED repro).
SNDR_FUZZ_ITERS="${SNDR_FUZZ_ITERS_TSAN:-4}" \
  "$repo/build-tsan/tests/scenario_fuzz_test"

echo "== tier1: AddressSanitizer build + extraction/obs tests =="
cmake -B "$repo/build-asan" -S "$repo" -DSNDR_SANITIZE=address >/dev/null
cmake --build "$repo/build-asan" -j "$jobs" --target extract_test \
  --target extract_cache_test --target batch_kernel_test --target obs_test \
  --target manifest_golden_test --target net_batch_test \
  --target geometry_budget_test --target scale_smoke_test \
  --target scenario_fuzz_test
"$repo/build-asan/tests/extract_test"
"$repo/build-asan/tests/extract_cache_test"
# Scale smoke: a 10k-net generated tree plus budgeted caches under heavy
# LRU eviction — ASan guards the pinned-entry and rebuild-in-place paths.
"$repo/build-asan/tests/geometry_budget_test"
"$repo/build-asan/tests/scale_smoke_test"
# Arena-carved batch planes: ASan guards the node-major × lane-minor bounds.
"$repo/build-asan/tests/batch_kernel_test"
# Cross-net lane planes ([nodes × (nets·rules)]) carve deeper into the arena.
"$repo/build-asan/tests/net_batch_test"
"$repo/build-asan/tests/obs_test"
"$repo/build-asan/tests/manifest_golden_test"
# Property fuzz at reduced depth: budgeted GeometryCache eviction and the
# domain workload generator allocate hard; ASan guards their reuse paths.
SNDR_FUZZ_ITERS="${SNDR_FUZZ_ITERS_ASAN:-4}" \
  "$repo/build-asan/tests/scenario_fuzz_test"

echo "== tier1: UndefinedBehaviorSanitizer build + flow/io tests =="
cmake -B "$repo/build-ubsan" -S "$repo" -DSNDR_SANITIZE=undefined >/dev/null
cmake --build "$repo/build-ubsan" -j "$jobs" --target flow_test \
  --target io_test --target design_io_test --target batch_kernel_test \
  --target delta_timing_test --target checkpoint_test \
  --target scenario_fuzz_test
"$repo/build-ubsan/tests/flow_test"
"$repo/build-ubsan/tests/io_test"
"$repo/build-ubsan/tests/design_io_test"
# Checkpoint text parser (hexfloat round-trips, fingerprint mixing).
"$repo/build-ubsan/tests/checkpoint_test"
# Lane-index arithmetic (int64 plane offsets) under UBSan.
"$repo/build-ubsan/tests/batch_kernel_test"
# Subtree replay indexing (flattened load offsets) under UBSan.
"$repo/build-ubsan/tests/delta_timing_test"
# Property fuzz at reduced depth: domain-weighted power/EM arithmetic and
# the checkpoint corruption property (strtod hexfloat paths) under UBSan.
SNDR_FUZZ_ITERS="${SNDR_FUZZ_ITERS_UBSAN:-4}" \
  "$repo/build-ubsan/tests/scenario_fuzz_test"

echo "tier1: OK"
