#!/usr/bin/env bash
# Kernel-regression gate: re-times the two-phase extraction kernels and
# fails if the cached materialize+moments sweep or the fused moments kernel
# runs >15% slower than the committed baseline. A second section gates the
# scale ladder (BENCH_manifest.scale_ladder.json): per-rung throughput,
# peak bytes, and the memory-budget bitwise-identity bit. Kernel numbers come from
# the bench's run manifest (BENCH_manifest.micro_kernels.json, schema
# sndr.run_manifest/1): every timed stage is a gauge named
# bench.micro_kernels.<stage>.t<threads>.seconds, one key per line.
#
# The benchmark writes its runtime records before the google-benchmark
# suites start, so the run below filters out every suite ('$^' matches
# nothing) and only emits the JSON. It runs in a scratch directory so the
# committed baseline at the repo root is never overwritten; refresh the
# baseline deliberately by running bench_micro_kernels from the repo root.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
tolerance="${BENCH_TOLERANCE:-1.15}"
baseline="$repo/BENCH_manifest.micro_kernels.json"

[[ -f "$baseline" ]] || { echo "bench_check: missing baseline $baseline" >&2; exit 1; }

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs" --target bench_micro_kernels

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$repo/build/bench/bench_micro_kernels" --benchmark_filter='$^' >/dev/null)
fresh="$workdir/BENCH_manifest.micro_kernels.json"

# Pulls one gauge value out of a run manifest (one "key": value per line).
manifest_gauge() {  # <file> <gauge-name>
  awk -v key="\"$2\":" '
    index($0, key) {
      split($0, parts, ": ")
      v = parts[2]
      sub(/,$/, "", v)
      print v
      exit
    }' "$1"
}

stage_seconds() {  # <file> <stage>  (threads=1 rung)
  manifest_gauge "$1" "bench.micro_kernels.$2.t1.seconds"
}

status=0
for stage in materialize_moments_per_net_rule_new moments_fused_new \
             rule_sweep_batched anneal_moves_delta; do
  base_s="$(stage_seconds "$baseline" "$stage")"
  fresh_s="$(stage_seconds "$fresh" "$stage")"
  if [[ -z "$base_s" ]]; then
    # A silent empty value would previously flow into the awk arithmetic;
    # name the missing key and the file so the fix is obvious.
    echo "bench_check: FAIL  baseline key 'bench.micro_kernels.$stage.t1.seconds'" \
         "not found in $baseline — refresh the committed baseline by running" \
         "build/bench/bench_micro_kernels from the repo root"
    status=1
    continue
  fi
  if [[ -z "$fresh_s" ]]; then
    echo "bench_check: FAIL  fresh run did not record" \
         "'bench.micro_kernels.$stage.t1.seconds' in $fresh (bench and gate out of sync?)"
    status=1
    continue
  fi
  verdict="$(awk -v b="$base_s" -v f="$fresh_s" -v tol="$tolerance" \
    'BEGIN { printf "%.2f %s", f / b, (f <= b * tol) ? "OK" : "FAIL" }')"
  ratio="${verdict% *}"
  ok="${verdict#* }"
  echo "bench_check: $ok   $stage  baseline=${base_s}s fresh=${fresh_s}s ratio=${ratio}"
  [[ "$ok" == "OK" ]] || status=1
done

# Batched rule sweep must keep beating the scalar sweep: the fresh
# scalar/batched ratio is the speedup the PR's acceptance pinned at >=2x
# (override with BENCH_MIN_SWEEP_SPEEDUP for noisy/smaller machines).
min_speedup="${BENCH_MIN_SWEEP_SPEEDUP:-2.0}"
scalar_s="$(stage_seconds "$fresh" rule_sweep_scalar)"
batched_s="$(stage_seconds "$fresh" rule_sweep_batched)"
if [[ -z "$scalar_s" || -z "$batched_s" ]]; then
  echo "bench_check: FAIL  rule_sweep pair missing (scalar='$scalar_s' batched='$batched_s')"
  status=1
else
  verdict="$(awk -v s="$scalar_s" -v b="$batched_s" -v min="$min_speedup" \
    'BEGIN { printf "%.2f %s", s / b, (s / b >= min) ? "OK" : "FAIL" }')"
  speedup="${verdict% *}"
  ok="${verdict#* }"
  echo "bench_check: $ok   rule_sweep speedup scalar=${scalar_s}s batched=${batched_s}s = ${speedup}x (min ${min_speedup}x)"
  [[ "$ok" == "OK" ]] || status=1
fi

# Delta-timing move throughput must keep beating exactness-by-full-rebuild:
# the fresh full/delta ratio is the speedup the PR's acceptance pinned at
# >=5x (override with BENCH_MIN_MOVE_SPEEDUP for noisy/smaller machines).
min_move_speedup="${BENCH_MIN_MOVE_SPEEDUP:-5.0}"
full_s="$(stage_seconds "$fresh" anneal_moves_full_rebuild)"
delta_s="$(stage_seconds "$fresh" anneal_moves_delta)"
if [[ -z "$full_s" || -z "$delta_s" ]]; then
  echo "bench_check: FAIL  anneal move-throughput pair missing from $fresh" \
       "(full='$full_s' delta='$delta_s')"
  status=1
else
  verdict="$(awk -v f="$full_s" -v d="$delta_s" -v min="$min_move_speedup" \
    'BEGIN { printf "%.2f %s", f / d, (f / d >= min) ? "OK" : "FAIL" }')"
  speedup="${verdict% *}"
  ok="${verdict#* }"
  echo "bench_check: $ok   anneal move throughput full=${full_s}s delta=${delta_s}s = ${speedup}x (min ${min_move_speedup}x)"
  [[ "$ok" == "OK" ]] || status=1
fi

# Host size next to the thread-ladder rungs: on a 1-CPU container the
# 2/4-thread points are oversubscription, not speedups. The value itself
# is informational, but a missing key means the bench and this gate have
# drifted apart — name the key like the gated stages do instead of
# silently skipping the line.
host_cpus="$(stage_seconds "$fresh" host_cpus)"
if [[ -n "$host_cpus" ]]; then
  echo "bench_check: info  host_cpus = $host_cpus"
else
  echo "bench_check: FAIL  fresh run did not record" \
       "'bench.micro_kernels.host_cpus.t1.seconds' in $fresh (bench and gate" \
       "out of sync? refresh by running build/bench/bench_micro_kernels from" \
       "the repo root)"
  status=1
fi

# Observability overhead on the hot kernels, as recorded by this run
# (informational: the <=2% budget is pinned by the bench itself; noise on
# loaded machines makes a hard gate here flaky). The headline fraction is
# floored at zero; `_raw` keeps the signed best-of-N minimum for auditing.
trials="$(stage_seconds "$fresh" obs_overhead_trials)"
for stage in obs_overhead_materialize_frac obs_overhead_exact_eval_frac; do
  frac="$(stage_seconds "$fresh" "$stage")"
  raw="$(stage_seconds "$fresh" "${stage}_raw")"
  [[ -n "$frac" ]] && echo "bench_check: info  $stage = $frac (raw=${raw:-n/a}, trials=${trials:-n/a})"
done

# --- Scale ladder ----------------------------------------------------------
# Gates the memory-budget contract and the per-rung pipeline throughput
# recorded in BENCH_manifest.scale_ladder.json. The fresh run covers the
# 10k rung only (the 100k/1M rungs take minutes; refresh their committed
# numbers deliberately by running bench_scale_ladder from the repo root,
# SNDR_SCALE_LADDER_1M=1 for the top rung). Gate terms per rung:
#   * budget_identical must be 1 — the budgeted rerun (geometry budget =
#     1/4 of the unbounded footprint) produced bitwise-identical output —
#     in the committed baseline for EVERY rung present, and in the fresh
#     10k run;
#   * fresh 10k nets/s within tolerance of the committed baseline;
#   * fresh 10k peak bytes (unbounded geometry, arena high-water) not
#     grown beyond tolerance.
scale_baseline="$repo/BENCH_manifest.scale_ladder.json"
if [[ ! -f "$scale_baseline" ]]; then
  echo "bench_check: FAIL  missing baseline $scale_baseline — run" \
       "build/bench/bench_scale_ladder from the repo root"
  status=1
else
  cmake --build "$repo/build" -j "$jobs" --target bench_scale_ladder
  (cd "$workdir" && SNDR_SCALE_RUNGS=10000 \
      "$repo/build/bench/bench_scale_ladder" >/dev/null)
  scale_fresh="$workdir/BENCH_manifest.scale_ladder.json"

  for rung in r10k r100k r1m; do
    ident="$(manifest_gauge "$scale_baseline" "bench.scale_ladder.$rung.budget_identical")"
    [[ -z "$ident" ]] && continue  # rung not in the committed ladder.
    if [[ "$ident" != 1* ]]; then
      echo "bench_check: FAIL  $rung budget_identical=$ident in committed baseline"
      status=1
    else
      echo "bench_check: OK    $rung budgeted run bitwise-identical (committed)"
    fi
  done

  fresh_ident="$(manifest_gauge "$scale_fresh" "bench.scale_ladder.r10k.budget_identical")"
  if [[ "$fresh_ident" != 1* ]]; then
    echo "bench_check: FAIL  fresh r10k budget_identical='$fresh_ident'"
    status=1
  fi

  # Throughput gets its own, wider tolerance: the rung times the whole
  # generate→extract→evaluate→optimize pipeline in well under a second at
  # 10k nets, so run-to-run noise on a loaded 1-CPU container is far
  # larger than on the best-of-N micro-kernel timings above. The byte
  # metrics below stay on the tight shared tolerance — they are
  # deterministic.
  scale_tolerance="${BENCH_SCALE_TOLERANCE:-1.30}"
  base_tput="$(manifest_gauge "$scale_baseline" "bench.scale_ladder.r10k.nets_per_s")"
  fresh_tput="$(manifest_gauge "$scale_fresh" "bench.scale_ladder.r10k.nets_per_s")"
  if [[ -z "$base_tput" || -z "$fresh_tput" ]]; then
    echo "bench_check: FAIL  r10k nets_per_s missing (baseline='$base_tput' fresh='$fresh_tput')"
    status=1
  else
    verdict="$(awk -v b="$base_tput" -v f="$fresh_tput" -v tol="$scale_tolerance" \
      'BEGIN { printf "%.2f %s", b / f, (f * tol >= b) ? "OK" : "FAIL" }')"
    ratio="${verdict% *}"
    ok="${verdict#* }"
    echo "bench_check: $ok   r10k throughput baseline=${base_tput} fresh=${fresh_tput} nets/s ratio=${ratio} (tol ${scale_tolerance})"
    [[ "$ok" == "OK" ]] || status=1
  fi

  for metric in geometry_unbounded_bytes arena_peak_bytes; do
    base_b="$(manifest_gauge "$scale_baseline" "bench.scale_ladder.r10k.$metric")"
    fresh_b="$(manifest_gauge "$scale_fresh" "bench.scale_ladder.r10k.$metric")"
    if [[ -z "$base_b" || -z "$fresh_b" ]]; then
      echo "bench_check: FAIL  r10k $metric missing (baseline='$base_b' fresh='$fresh_b')"
      status=1
      continue
    fi
    verdict="$(awk -v b="$base_b" -v f="$fresh_b" -v tol="$tolerance" \
      'BEGIN { printf "%.2f %s", f / b, (f <= b * tol) ? "OK" : "FAIL" }')"
    ratio="${verdict% *}"
    ok="${verdict#* }"
    echo "bench_check: $ok   r10k $metric baseline=${base_b} fresh=${fresh_b} ratio=${ratio}"
    [[ "$ok" == "OK" ]] || status=1
  done

  rss="$(manifest_gauge "$scale_fresh" "bench.scale_ladder.r10k.peak_rss_bytes")"
  [[ -n "$rss" ]] && echo "bench_check: info  r10k peak_rss_bytes = $rss (not gated: monotonic per process)"
fi

# --- Gated domains ---------------------------------------------------------
# Gates the multi-domain invariants recorded in BENCH_manifest.domains.json
# (bench/bench_domains.cpp): the activity-weighted objective must actually
# move the rule assignment on the gated workload, weighted switched cap
# must sit below raw, and the inter-clock pair report must be present and
# violation-free. All are determinism bits, not timings, so the committed
# baseline and a fresh run are both gated with no tolerance.
domains_baseline="$repo/BENCH_manifest.domains.json"
if [[ ! -f "$domains_baseline" ]]; then
  echo "bench_check: FAIL  missing baseline $domains_baseline — run" \
       "build/bench/bench_domains from the repo root"
  status=1
else
  cmake --build "$repo/build" -j "$jobs" --target bench_domains
  (cd "$workdir" && "$repo/build/bench/bench_domains" >/dev/null)
  domains_fresh="$workdir/BENCH_manifest.domains.json"

  check_domain_bit() {  # <file> <gauge> <want-prefix> <which-run>
    local v
    v="$(manifest_gauge "$1" "$2")"
    if [[ -z "$v" ]]; then
      echo "bench_check: FAIL  '$2' not found in $1 — refresh by running" \
           "build/bench/bench_domains from the repo root"
      status=1
    elif [[ "$v" == $3* ]]; then
      echo "bench_check: OK    $2 = $v ($4)"
    else
      echo "bench_check: FAIL  $2 = $v (want $3) ($4)"
      status=1
    fi
  }
  for f in "$domains_baseline" "$domains_fresh"; do
    which="committed"; [[ "$f" == "$domains_fresh" ]] && which="fresh"
    check_domain_bit "$f" "bench.domains.g96.activity_changes_assignment" 1 "$which"
    check_domain_bit "$f" "bench.domains.g512.inter_clock_violations" 0 "$which"
    check_domain_bit "$f" "bench.domains.g512.feasible" 1 "$which"
    ratio="$(manifest_gauge "$f" "bench.domains.g512.weighted_over_raw")"
    if [[ -z "$ratio" ]]; then
      echo "bench_check: FAIL  'bench.domains.g512.weighted_over_raw' not" \
           "found in $f — refresh by running build/bench/bench_domains" \
           "from the repo root"
      status=1
    else
      verdict="$(awk -v r="$ratio" 'BEGIN { print (r > 0 && r < 1) ? "OK " : "FAIL" }')"
      echo "bench_check: $verdict  g512 weighted_over_raw = $ratio (want in (0,1)) ($which)"
      [[ "$verdict" == "OK " ]] || status=1
    fi
  done
  pairs="$(manifest_gauge "$domains_fresh" "bench.domains.g512.inter_clock_pairs")"
  [[ -n "$pairs" ]] && echo "bench_check: info  g512 inter_clock_pairs = $pairs"
fi

# --- Serve soak ------------------------------------------------------------
# Gates the service numbers recorded in BENCH_manifest.serve.json
# (bench/bench_serve.cpp): queued-job throughput (serve_jobs_per_s), p99
# submit->done latency (serve_p99_s), and the identity bit (every job
# bitwise-identical to the same config run serially through the CLI path).
# Throughput/latency get a wide tolerance — the soak queues ~200 whole
# flows, so wall numbers are far noisier than the micro-kernel timings.
serve_baseline="$repo/BENCH_manifest.serve.json"
if [[ ! -f "$serve_baseline" ]]; then
  echo "bench_check: FAIL  missing baseline $serve_baseline — run" \
       "build/bench/bench_serve from the repo root"
  status=1
else
  cmake --build "$repo/build" -j "$jobs" --target bench_serve
  (cd "$workdir" && "$repo/build/bench/bench_serve" >/dev/null)
  serve_fresh="$workdir/BENCH_manifest.serve.json"

  for f in "$serve_baseline" "$serve_fresh"; do
    which="committed"; [[ "$f" == "$serve_fresh" ]] && which="fresh"
    ident="$(manifest_gauge "$f" "bench.serve.identical")"
    if [[ -z "$ident" ]]; then
      echo "bench_check: FAIL  'bench.serve.identical' not found in $f —" \
           "refresh by running build/bench/bench_serve from the repo root"
      status=1
    elif [[ "$ident" == 1* ]]; then
      echo "bench_check: OK    serve jobs bitwise-identical to serial ($which)"
    else
      echo "bench_check: FAIL  bench.serve.identical = $ident ($which)"
      status=1
    fi
  done

  serve_tolerance="${BENCH_SERVE_TOLERANCE:-1.50}"
  base_tput="$(manifest_gauge "$serve_baseline" "bench.serve.serve_jobs_per_s")"
  fresh_tput="$(manifest_gauge "$serve_fresh" "bench.serve.serve_jobs_per_s")"
  if [[ -z "$base_tput" ]]; then
    echo "bench_check: FAIL  baseline key 'bench.serve.serve_jobs_per_s'" \
         "not found in $serve_baseline — refresh the committed baseline by" \
         "running build/bench/bench_serve from the repo root"
    status=1
  elif [[ -z "$fresh_tput" ]]; then
    echo "bench_check: FAIL  fresh run did not record" \
         "'bench.serve.serve_jobs_per_s' in $serve_fresh (bench and gate out" \
         "of sync?)"
    status=1
  else
    verdict="$(awk -v b="$base_tput" -v f="$fresh_tput" -v tol="$serve_tolerance" \
      'BEGIN { printf "%.2f %s", b / f, (f * tol >= b) ? "OK" : "FAIL" }')"
    ratio="${verdict% *}"
    ok="${verdict#* }"
    echo "bench_check: $ok   serve throughput baseline=${base_tput} fresh=${fresh_tput} jobs/s ratio=${ratio} (tol ${serve_tolerance})"
    [[ "$ok" == "OK" ]] || status=1
  fi

  base_p99="$(manifest_gauge "$serve_baseline" "bench.serve.serve_p99_s")"
  fresh_p99="$(manifest_gauge "$serve_fresh" "bench.serve.serve_p99_s")"
  if [[ -z "$base_p99" ]]; then
    echo "bench_check: FAIL  baseline key 'bench.serve.serve_p99_s' not" \
         "found in $serve_baseline — refresh the committed baseline by" \
         "running build/bench/bench_serve from the repo root"
    status=1
  elif [[ -z "$fresh_p99" ]]; then
    echo "bench_check: FAIL  fresh run did not record" \
         "'bench.serve.serve_p99_s' in $serve_fresh (bench and gate out of" \
         "sync?)"
    status=1
  else
    verdict="$(awk -v b="$base_p99" -v f="$fresh_p99" -v tol="$serve_tolerance" \
      'BEGIN { printf "%.2f %s", f / b, (f <= b * tol) ? "OK" : "FAIL" }')"
    ratio="${verdict% *}"
    ok="${verdict#* }"
    echo "bench_check: $ok   serve p99 latency baseline=${base_p99}s fresh=${fresh_p99}s ratio=${ratio} (tol ${serve_tolerance})"
    [[ "$ok" == "OK" ]] || status=1
  fi
fi

# --- DSE sweep -------------------------------------------------------------
# Gates the design-space-exploration numbers in BENCH_manifest.dse.json
# (bench/bench_dse.cpp): the identity bit (every sweep point bitwise-
# identical to its own emitted config run standalone) for both the
# committed baseline and a fresh run, and the fresh reuse speedup — one
# warm-started sweep vs N from-scratch runs of the same settings — which
# the PR's acceptance pinned at >=3x (override with BENCH_MIN_DSE_SPEEDUP
# for noisy/smaller machines).
dse_baseline="$repo/BENCH_manifest.dse.json"
if [[ ! -f "$dse_baseline" ]]; then
  echo "bench_check: FAIL  missing baseline $dse_baseline — run" \
       "build/bench/bench_dse from the repo root"
  status=1
else
  cmake --build "$repo/build" -j "$jobs" --target bench_dse
  (cd "$workdir" && "$repo/build/bench/bench_dse" >/dev/null)
  dse_fresh="$workdir/BENCH_manifest.dse.json"

  for f in "$dse_baseline" "$dse_fresh"; do
    which="committed"; [[ "$f" == "$dse_fresh" ]] && which="fresh"
    ident="$(manifest_gauge "$f" "bench.dse.identical")"
    if [[ -z "$ident" ]]; then
      echo "bench_check: FAIL  'bench.dse.identical' not found in $f —" \
           "refresh by running build/bench/bench_dse from the repo root"
      status=1
    elif [[ "$ident" == 1* ]]; then
      echo "bench_check: OK    dse sweep points bitwise-identical to standalone ($which)"
    else
      echo "bench_check: FAIL  bench.dse.identical = $ident ($which)"
      status=1
    fi
  done

  min_dse_speedup="${BENCH_MIN_DSE_SPEEDUP:-3.0}"
  fresh_speedup="$(manifest_gauge "$dse_fresh" "bench.dse.dse_reuse_speedup")"
  if [[ -z "$fresh_speedup" ]]; then
    echo "bench_check: FAIL  fresh run did not record" \
         "'bench.dse.dse_reuse_speedup' in $dse_fresh (bench and gate out" \
         "of sync? refresh by running build/bench/bench_dse from the repo" \
         "root)"
    status=1
  else
    cold_s="$(manifest_gauge "$dse_fresh" "bench.dse.dse_cold_s")"
    reuse_s="$(manifest_gauge "$dse_fresh" "bench.dse.dse_reuse_s")"
    verdict="$(awk -v s="$fresh_speedup" -v min="$min_dse_speedup" \
      'BEGIN { printf "%.2f %s", s, (s >= min) ? "OK" : "FAIL" }')"
    speedup="${verdict% *}"
    ok="${verdict#* }"
    echo "bench_check: $ok   dse sweep reuse cold=${cold_s:-n/a}s reuse=${reuse_s:-n/a}s = ${speedup}x (min ${min_dse_speedup}x)"
    [[ "$ok" == "OK" ]] || status=1
  fi

  points="$(manifest_gauge "$dse_fresh" "bench.dse.points")"
  front="$(manifest_gauge "$dse_fresh" "bench.dse.front_size")"
  [[ -n "$points" ]] && echo "bench_check: info  dse points = $points, front_size = ${front:-n/a}"
fi

if [[ "$status" -ne 0 ]]; then
  echo "bench_check: kernel, scale-ladder, domain, serve, or dse regression beyond the gates" >&2
fi
exit "$status"
