#!/usr/bin/env bash
# Kernel-regression gate: re-times the two-phase extraction kernels and
# fails if the cached materialize+moments sweep or the fused moments kernel
# runs >15% slower than the committed BENCH_runtime.json baseline.
#
# The benchmark writes its runtime records before the google-benchmark
# suites start, so the run below filters out every suite ('$^' matches
# nothing) and only emits the JSON. It runs in a scratch directory so the
# committed baseline at the repo root is never overwritten; refresh the
# baseline deliberately by running bench_micro_kernels from the repo root.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
tolerance="${BENCH_TOLERANCE:-1.15}"
baseline="$repo/BENCH_runtime.json"

[[ -f "$baseline" ]] || { echo "bench_check: missing baseline $baseline" >&2; exit 1; }

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j "$jobs" --target bench_micro_kernels

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$repo/build/bench/bench_micro_kernels" --benchmark_filter='$^' >/dev/null)
fresh="$workdir/BENCH_runtime.json"

# Pulls the seconds field of a stage's threads=1 record from a runtime JSON
# (one record per line, written by bench::write_runtime_json).
stage_seconds() {  # <file> <stage>
  awk -v stage="$2" '
    index($0, "\"stage\":\"" stage "\"") && index($0, "\"threads\":1,") {
      if (split($0, parts, /"seconds":/) > 1) {
        split(parts[2], v, /[,}]/)
        print v[1]
        exit
      }
    }' "$1"
}

status=0
for stage in materialize_moments_per_net_rule_new moments_fused_new; do
  base_s="$(stage_seconds "$baseline" "$stage")"
  fresh_s="$(stage_seconds "$fresh" "$stage")"
  if [[ -z "$base_s" || -z "$fresh_s" ]]; then
    echo "bench_check: FAIL  $stage missing (baseline='$base_s' fresh='$fresh_s')"
    status=1
    continue
  fi
  verdict="$(awk -v b="$base_s" -v f="$fresh_s" -v tol="$tolerance" \
    'BEGIN { printf "%.2f %s", f / b, (f <= b * tol) ? "OK" : "FAIL" }')"
  ratio="${verdict% *}"
  ok="${verdict#* }"
  echo "bench_check: $ok   $stage  baseline=${base_s}s fresh=${fresh_s}s ratio=${ratio}"
  [[ "$ok" == "OK" ]] || status=1
done

if [[ "$status" -ne 0 ]]; then
  echo "bench_check: kernel regression beyond ${tolerance}x tolerance" >&2
fi
exit "$status"
